#include "core/batch.h"

#include <map>
#include <memory>
#include <mutex>

#include "common/timer.h"
#include "core/query_cache.h"

namespace colarm {

namespace {

// Order-sensitive byte key of a query (duplicate detection).
std::string QueryKey(const LocalizedQuery& query) {
  std::string key;
  auto push32 = [&key](uint32_t v) {
    key.append(reinterpret_cast<const char*>(&v), 4);
  };
  for (const RangeSelection& range : query.ranges) {
    push32(range.attr);
    push32(range.lo);
    push32(range.hi);
  }
  key.push_back('|');
  for (AttrId a : query.item_attrs) push32(a);
  key.push_back('|');
  key.append(reinterpret_cast<const char*>(&query.minsupp), sizeof(double));
  key.append(reinterpret_cast<const char*>(&query.minconf), sizeof(double));
  // Constraints change the answer, so same-box queries with different
  // constraint sets must never be merged as duplicates.
  key.push_back('|');
  key.append(query.constraints.CacheKey());
  return key;
}

// Materializes one shared focal subset on the engine's configured backend.
// The bitmap route yields the same sorted tid list as the scalar scan, so
// sharing stays backend-transparent. `pool` is null here on purpose when
// called from inside a parallel region (boxes already run concurrently).
FocalSubset MaterializeSubset(const MipIndex& index, const Rect& box,
                              ExecBackend backend, ThreadPool* pool) {
  if (backend == ExecBackend::kBitmap && !index.vertical().empty()) {
    FocalSubset subset;
    subset.box = box;
    subset.tids =
        index.vertical()
            .MaterializeDq(index.dataset().schema(), box, pool)
            .ToTids();
    return subset;
  }
  return FocalSubset::Materialize(index.dataset(), box);
}

}  // namespace

Result<BatchResult> BatchExecutor::Execute(
    std::span<const LocalizedQuery> queries,
    const BatchOptions& options) const {
  Timer timer;
  BatchResult batch;
  batch.results.reserve(queries.size());

  const MipIndex& index = engine_->index();
  const Schema& schema = index.dataset().schema();
  for (const LocalizedQuery& query : queries) {
    COLARM_RETURN_IF_ERROR(query.Validate(schema));
  }

  // Resolve the pool: inherit the engine's, run sequentially, or spin up a
  // dedicated pool for this batch.
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = engine_->pool();
  if (options.num_threads == 1) {
    pool = nullptr;
  } else if (options.num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = own_pool.get();
  }

  QueryCache* cache = options.cache_override != nullptr ? options.cache_override
                                                       : engine_->cache();
  if (cache == nullptr && !IsParallel(pool)) {
    COLARM_RETURN_IF_ERROR(SequentialExecute(queries, options, &batch));
    batch.total_ms = timer.ElapsedMillis();
    return batch;
  }

  // Planned path (any parallelism; with a null pool every ParallelFor runs
  // inline in order). Planning stays sequential and cheap: detect
  // duplicates and group unique queries by focal box, reproducing the
  // sequential sharing counters exactly (first occurrence executes, every
  // later query with the same box counts as shared).
  const size_t n = queries.size();
  std::vector<size_t> rep(n);  // representative executing each query's work
  std::vector<size_t> unique;  // indices that actually execute
  std::map<std::string, size_t> duplicate_of;
  for (size_t i = 0; i < n; ++i) {
    rep[i] = i;
    if (options.reuse_duplicate_results) {
      auto [it, inserted] = duplicate_of.try_emplace(QueryKey(queries[i]), i);
      if (!inserted) {
        rep[i] = it->second;
        ++batch.duplicates_reused;
        continue;
      }
    }
    unique.push_back(i);
  }

  // Focal subsets and (with a session cache) per-query decisions + memo
  // transactions. With a cache, all cache acquisitions happen here — in
  // first-appearance input order, before any parallel execution — so cache
  // state transitions (recency, insertions, telemetry) are identical for
  // every thread count.
  std::vector<FocalSubset> boxes;
  std::vector<const FocalSubset*> shared(n, nullptr);
  std::vector<OptimizerDecision> decisions(n);
  std::vector<std::unique_ptr<CountMemoTxn>> txns(n);
  std::vector<uint64_t> select_checks(n, 0);
  CacheTelemetry before;
  if (cache != nullptr) {
    before = cache->telemetry();
    const bool memo = cache->options().count_memo;
    std::map<std::string, size_t> box_of;
    std::vector<size_t> box_index(n, 0);
    // Acquisitions append to `boxes`; pointers are taken only after the
    // loop, when the vector is stable.
    for (size_t i : unique) {
      Rect box = queries[i].ToRect(schema);
      CacheHint hint = cache->Probe(box);
      decisions[i] = engine_->optimizer().Choose(queries[i], &hint);
      if (memo) {
        txns[i] = cache->BeginTxn(box, queries[i].constraints.CacheKey());
      }
      if (options.share_subsets) {
        auto [it, inserted] =
            box_of.try_emplace(CanonicalBoxKey(box), boxes.size());
        if (inserted) {
          // Shared subsets carry no per-query SELECT charge (the cache-less
          // batch materializes them outside any query too).
          boxes.push_back(
              cache->Acquire(box, engine_->options().backend, pool, nullptr)
                  .subset);
        } else {
          ++batch.subsets_shared;
        }
        box_index[i] = it->second;
      } else {
        // Unshared mode: every unique query pays the cold per-query SELECT
        // price, exactly like a cache-less run.
        box_index[i] = boxes.size();
        boxes.push_back(cache
                            ->Acquire(box, engine_->options().backend, pool,
                                      &select_checks[i])
                            .subset);
      }
    }
    for (size_t i : unique) shared[i] = &boxes[box_index[i]];
  } else if (options.share_subsets) {
    // Distinct focal boxes of the unique queries, each materialized once —
    // concurrently, since the SELECT scans are independent.
    std::map<std::string, size_t> box_of;
    std::vector<Rect> rects;
    std::vector<size_t> box_index(n, 0);
    for (size_t i : unique) {
      Rect box = queries[i].ToRect(schema);
      std::string key = CanonicalBoxKey(box);
      auto [it, inserted] = box_of.try_emplace(std::move(key), rects.size());
      if (inserted) {
        rects.push_back(std::move(box));
      } else {
        ++batch.subsets_shared;
      }
      box_index[i] = it->second;
    }
    boxes.resize(rects.size());
    ParallelFor(pool, rects.size(), [&](size_t b) {
      boxes[b] = MaterializeSubset(index, rects[b],
                                   engine_->options().backend, nullptr);
    });
    for (size_t i : unique) shared[i] = &boxes[box_index[i]];
  }

  // Unique queries execute concurrently (coarse units, dynamically
  // claimed); each also passes the pool down so a lone heavy query still
  // parallelizes its record-level operators. Results land in input slots,
  // so input order is preserved by construction. Memo reads see the
  // pre-batch cache state (transactions commit below), so every query's
  // result is independent of execution interleaving.
  std::vector<QueryResult> results(n);
  Status failure = Status::OK();
  std::mutex failure_mutex;
  ParallelFor(pool, unique.size(), [&](size_t u) {
    const size_t i = unique[u];
    const LocalizedQuery& query = queries[i];
    OptimizerDecision decision = cache != nullptr
                                     ? decisions[i]
                                     : engine_->optimizer().Choose(query);
    PlanKind kind =
        options.use_optimizer ? decision.chosen : options.forced_plan;
    PlanExecOptions exec;
    exec.rulegen = engine_->options().rulegen;
    exec.arm_miner = engine_->options().arm_miner;
    exec.shared_subset = shared[i];
    exec.pool = pool;
    exec.backend = engine_->options().backend;
    exec.cache = cache;
    exec.memo_txn = txns[i].get();
    exec.cancel = options.cancel;
    Result<PlanResult> plan = ExecutePlan(kind, index, query, exec);
    if (!plan.ok()) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (failure.ok()) failure = plan.status();
      return;
    }
    results[i].rules = std::move(plan->rules);
    results[i].plan_used = kind;
    results[i].chosen_by_optimizer = options.use_optimizer;
    results[i].stats = plan->stats;
    results[i].stats.record_checks += select_checks[i];
    results[i].decision = decision;
  });
  if (!failure.ok()) return failure;

  // Commit the buffered count memos at the batch's sequential tail, in
  // input order — the other half of the determinism contract.
  if (cache != nullptr) {
    for (size_t i : unique) {
      if (txns[i] != nullptr) cache->Commit(txns[i].get());
    }
    const CacheTelemetry after = cache->telemetry();
    batch.cache.hits_exact = after.hits_exact - before.hits_exact;
    batch.cache.hits_containment =
        after.hits_containment - before.hits_containment;
    batch.cache.hits_count_memo =
        after.hits_count_memo - before.hits_count_memo;
    batch.cache.hits_compose = after.hits_compose - before.hits_compose;
    batch.cache.misses = after.misses - before.misses;
    batch.cache.evictions = after.evictions - before.evictions;
    batch.cache.admission_rejects =
        after.admission_rejects - before.admission_rejects;
    batch.cache.bytes = after.bytes;
    batch.cache.entries = after.entries;
  }

  for (size_t i = 0; i < n; ++i) {
    batch.results.push_back(rep[i] == i ? std::move(results[i])
                                        : batch.results[rep[i]]);
  }
  batch.total_ms = timer.ElapsedMillis();
  return batch;
}

Status BatchExecutor::SequentialExecute(
    std::span<const LocalizedQuery> queries, const BatchOptions& options,
    BatchResult* batch) const {
  const MipIndex& index = engine_->index();
  const Schema& schema = index.dataset().schema();
  std::map<std::string, size_t> duplicate_of;
  std::map<std::string, FocalSubset> subsets;

  for (size_t i = 0; i < queries.size(); ++i) {
    const LocalizedQuery& query = queries[i];
    if (options.reuse_duplicate_results) {
      auto [it, inserted] = duplicate_of.try_emplace(QueryKey(query), i);
      if (!inserted) {
        batch->results.push_back(batch->results[it->second]);
        ++batch->duplicates_reused;
        continue;
      }
    }

    const FocalSubset* shared = nullptr;
    if (options.share_subsets) {
      Rect box = query.ToRect(schema);
      std::string key = CanonicalBoxKey(box);
      auto it = subsets.find(key);
      if (it == subsets.end()) {
        it = subsets
                 .emplace(std::move(key),
                          MaterializeSubset(index, box,
                                            engine_->options().backend,
                                            nullptr))
                 .first;
      } else {
        ++batch->subsets_shared;
      }
      shared = &it->second;
    }

    OptimizerDecision decision = engine_->optimizer().Choose(query);
    PlanKind kind =
        options.use_optimizer ? decision.chosen : options.forced_plan;
    PlanExecOptions exec;
    exec.rulegen = engine_->options().rulegen;
    exec.arm_miner = engine_->options().arm_miner;
    exec.shared_subset = shared;
    exec.backend = engine_->options().backend;
    exec.cancel = options.cancel;
    Result<PlanResult> plan = ExecutePlan(kind, index, query, exec);
    if (!plan.ok()) return plan.status();

    QueryResult result;
    result.rules = std::move(plan->rules);
    result.plan_used = kind;
    result.chosen_by_optimizer = options.use_optimizer;
    result.stats = plan->stats;
    result.decision = decision;
    batch->results.push_back(std::move(result));
  }
  return Status::OK();
}

}  // namespace colarm
