#include "core/recommender.h"

#include <algorithm>

#include "common/string_util.h"
#include "plans/operators.h"

namespace colarm {

std::string RegionSuggestion::ToString(const Schema& schema) const {
  return StrFormat(
      "%s  [|DQ|=%u, fresh=%u (%.0f%%), score=%.1f]",
      query.ToString(schema).c_str(), subset_size, fresh_itemsets,
      freshness * 100.0, score);
}

std::vector<RegionSuggestion> ParameterRecommender::Suggest(
    const RecommenderOptions& options) const {
  std::vector<RegionSuggestion> suggestions;
  const Dataset& dataset = index_->dataset();
  const Schema& schema = dataset.schema();
  const uint32_t m = dataset.num_records();
  if (m == 0 || options.minsupp_grid.empty()) return suggestions;

  const double lowest_minsupp =
      *std::min_element(options.minsupp_grid.begin(),
                        options.minsupp_grid.end());

  for (AttrId attr = 0; attr < schema.num_attributes(); ++attr) {
    const uint32_t domain = schema.attribute(attr).domain_size();
    if (domain < options.min_windowable_domain) continue;
    const uint32_t windows = std::min(options.windows_per_attribute, domain);
    const uint32_t width = domain / windows;

    for (uint32_t w = 0; w < windows; ++w) {
      const auto lo = static_cast<ValueId>(w * width);
      const auto hi = static_cast<ValueId>(
          w + 1 == windows ? domain - 1 : (w + 1) * width - 1);

      LocalizedQuery probe;
      probe.ranges = {{attr, lo, hi}};
      probe.minsupp = lowest_minsupp;
      probe.minconf = options.minconf;
      PlanContext ctx(*index_, probe, RuleGenOptions{});
      if (ctx.subset.size() < 2) continue;

      // One SUPPORTED-SEARCH + one local counting pass at the lowest grid
      // threshold; every higher threshold is then evaluated from the same
      // counts for free.
      CandidateSet cands = OpSupportedSearch(&ctx);
      std::vector<uint32_t> all = cands.contained;
      all.insert(all.end(), cands.overlapped.begin(), cands.overlapped.end());
      std::vector<QualifiedItemset> counted = OpEliminate(&ctx, all);

      RegionSuggestion best;
      for (double minsupp : options.minsupp_grid) {
        const uint32_t local_min = MinCount(minsupp, ctx.subset.size());
        const uint32_t global_min = MinCount(minsupp, m);
        uint32_t fresh = 0;
        uint32_t qualified = 0;
        for (const QualifiedItemset& q : counted) {
          if (q.local_count < local_min) continue;
          // Itemsets need >= 2 items to ever produce a rule.
          if (index_->mip(q.mip_id).items.size() < 2) continue;
          ++qualified;
          if (index_->mip(q.mip_id).global_count < global_min) ++fresh;
        }
        if (fresh == 0) continue;
        // Prefer strict thresholds: the same fresh volume at a higher
        // minsupport is a stronger, cleaner signal.
        double score = fresh * minsupp;
        if (score > best.score) {
          best.query = probe;
          best.query.minsupp = minsupp;
          best.subset_size = ctx.subset.size();
          best.fresh_itemsets = fresh;
          best.freshness =
              qualified == 0 ? 0.0 : static_cast<double>(fresh) / qualified;
          best.score = score;
        }
      }
      if (best.score > 0.0) suggestions.push_back(std::move(best));
    }
  }

  std::sort(suggestions.begin(), suggestions.end(),
            [](const RegionSuggestion& a, const RegionSuggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.subset_size > b.subset_size;
            });
  if (suggestions.size() > options.max_suggestions) {
    suggestions.resize(options.max_suggestions);
  }
  return suggestions;
}

}  // namespace colarm
