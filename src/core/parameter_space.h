#ifndef COLARM_CORE_PARAMETER_SPACE_H_
#define COLARM_CORE_PARAMETER_SPACE_H_

#include <vector>

#include "mip/mip_index.h"
#include "mining/rule_generator.h"
#include "plans/query.h"

namespace colarm {

struct ParameterSpaceOptions {
  /// Smallest local support fraction materialized. Queries below the
  /// floor cannot be answered from the view (RulesAt returns an error).
  double min_support_floor = 0.1;
  RuleGenOptions rulegen;
};

/// PARAS-style parameter-space view (Lin, Mukherji et al., PVLDB'13 — the
/// authors' system that COLARM extends to localized mining), applied to
/// one focal subset: every candidate rule of the subset is materialized
/// once with its exact local (support, confidence) coordinates, after
/// which *any* threshold combination is answered by a filter — the
/// interactive exploration loop ("try 80/90… now 75/85…") costs one
/// record-level pass total instead of one per threshold change.
class ParameterSpaceView {
 public:
  /// Builds the view for `base`'s RANGE / ITEM ATTRIBUTES selection (the
  /// thresholds in `base` are ignored). Cost is comparable to one S-E-V
  /// execution at the floor threshold.
  static Result<ParameterSpaceView> Build(
      const MipIndex& index, const LocalizedQuery& base,
      const ParameterSpaceOptions& options = {});

  /// All rules with local support >= minsupp and confidence >= minconf.
  /// Fails if minsupp is below the materialization floor.
  Result<RuleSet> RulesAt(double minsupp, double minconf) const;

  /// Number of rules at a threshold combination (same floor rule).
  Result<uint32_t> CountAt(double minsupp, double minconf) const;

  /// Rule-count grid over threshold axes — the "parameter space map" an
  /// exploration UI renders. grid[i][j] = count at (minsupps[i],
  /// minconfs[j]); thresholds below the floor yield UINT32_MAX markers.
  std::vector<std::vector<uint32_t>> CountGrid(
      std::span<const double> minsupps,
      std::span<const double> minconfs) const;

  uint32_t subset_size() const { return subset_size_; }
  double floor() const { return floor_; }
  size_t num_points() const { return rules_.size(); }

 private:
  ParameterSpaceView() = default;

  // Sorted by descending support count for early-exit filtering.
  std::vector<Rule> rules_;
  uint32_t subset_size_ = 0;
  double floor_ = 0.0;
};

}  // namespace colarm

#endif  // COLARM_CORE_PARAMETER_SPACE_H_
