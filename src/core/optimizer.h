#ifndef COLARM_CORE_OPTIMIZER_H_
#define COLARM_CORE_OPTIMIZER_H_

#include <array>

#include "cost/cost_model.h"

namespace colarm {

/// The optimizer's verdict for one query: the chosen plan plus the full
/// per-plan estimate table (for EXPLAIN and accuracy studies).
struct OptimizerDecision {
  PlanKind chosen = PlanKind::kSEV;
  std::array<PlanCostEstimate, 6> estimates;
  /// Constraint provenance: the rendered constraint clauses the estimates
  /// priced in (selectivity-aware terms); empty for unconstrained queries.
  std::string constraints;
  /// Cache provenance: how the session cache will serve the SELECT stage
  /// (kNone when no cache is configured or nothing reusable is resident).
  /// Because SELECT is plan-uniform, the hint shifts every estimate's
  /// select/total by the same amount and never changes `chosen`.
  CacheHint cache;

  const PlanCostEstimate& chosen_estimate() const {
    return estimates[static_cast<size_t>(chosen)];
  }
};

/// The COLARM cost-based optimizer: evaluates the six closed-form plan
/// cost formulas and picks the minimum (Section 3.1). Stateless beyond the
/// cost model it wraps; Choose() is constant time.
class Optimizer {
 public:
  explicit Optimizer(CostModel model) : model_(std::move(model)) {}

  /// `hint` (optional) is the session cache's probe result for the query's
  /// focal box; it reprices the plan-uniform SELECT term and is recorded in
  /// the decision, but cannot change which plan is chosen.
  OptimizerDecision Choose(const LocalizedQuery& query,
                           const CacheHint* hint = nullptr) const;

  const CostModel& cost_model() const { return model_; }

 private:
  CostModel model_;
};

}  // namespace colarm

#endif  // COLARM_CORE_OPTIMIZER_H_
