#ifndef COLARM_CORE_OPTIMIZER_H_
#define COLARM_CORE_OPTIMIZER_H_

#include <array>

#include "cost/cost_model.h"

namespace colarm {

/// The optimizer's verdict for one query: the chosen plan plus the full
/// per-plan estimate table (for EXPLAIN and accuracy studies).
struct OptimizerDecision {
  PlanKind chosen = PlanKind::kSEV;
  std::array<PlanCostEstimate, 6> estimates;

  const PlanCostEstimate& chosen_estimate() const {
    return estimates[static_cast<size_t>(chosen)];
  }
};

/// The COLARM cost-based optimizer: evaluates the six closed-form plan
/// cost formulas and picks the minimum (Section 3.1). Stateless beyond the
/// cost model it wraps; Choose() is constant time.
class Optimizer {
 public:
  explicit Optimizer(CostModel model) : model_(std::move(model)) {}

  OptimizerDecision Choose(const LocalizedQuery& query) const;

  const CostModel& cost_model() const { return model_; }

 private:
  CostModel model_;
};

}  // namespace colarm

#endif  // COLARM_CORE_OPTIMIZER_H_
