#ifndef COLARM_CORE_EXPORT_H_
#define COLARM_CORE_EXPORT_H_

#include <ostream>
#include <string>

#include "data/dataset.h"
#include "mining/rule.h"
#include "plans/focal_subset.h"

namespace colarm {

struct ExportOptions {
  /// Include the null-invariant interestingness measures (costs one
  /// consequent-count scan of the focal subset per rule).
  bool with_measures = false;
};

/// Writes rules as CSV with header:
///   antecedent,consequent,support,confidence,itemset_count,
///   antecedent_count,base_count[,lift,cosine,kulczynski,...]
/// Item lists are ';'-joined "Attr=value" pairs; fields containing commas
/// or quotes are RFC-4180 quoted.
void RulesToCsv(const Dataset& dataset, const RuleSet& rules,
                const FocalSubset& subset, const ExportOptions& options,
                std::ostream& out);

/// Writes rules as a JSON array of objects (stable key order, ASCII-safe
/// escaping).
void RulesToJson(const Dataset& dataset, const RuleSet& rules,
                 const FocalSubset& subset, const ExportOptions& options,
                 std::ostream& out);

/// Convenience string-returning wrappers.
std::string RulesToCsvString(const Dataset& dataset, const RuleSet& rules,
                             const FocalSubset& subset,
                             const ExportOptions& options = {});
std::string RulesToJsonString(const Dataset& dataset, const RuleSet& rules,
                              const FocalSubset& subset,
                              const ExportOptions& options = {});

}  // namespace colarm

#endif  // COLARM_CORE_EXPORT_H_
