#ifndef COLARM_CORE_EXPLAIN_H_
#define COLARM_CORE_EXPLAIN_H_

#include <string>

#include "core/engine.h"

namespace colarm {

/// Multi-line table of the optimizer's per-plan estimates with the chosen
/// plan marked (the EXPLAIN output).
std::string FormatDecision(const OptimizerDecision& decision);

/// Renders the paper's Table 4 (the plan / optimization / cost summary).
std::string FormatPlanSummaryTable();

/// Pretty-prints up to `limit` rules (0 = all), sorted by descending local
/// support then confidence.
std::string FormatRules(const Schema& schema, const RuleSet& rules,
                        size_t limit = 0);

/// One-paragraph execution report for a finished query (plan, timings,
/// rule count, optimizer agreement).
std::string FormatQueryResult(const Schema& schema, const QueryResult& result);

}  // namespace colarm

#endif  // COLARM_CORE_EXPLAIN_H_
