#ifndef COLARM_CORE_QUERY_PARSER_H_
#define COLARM_CORE_QUERY_PARSER_H_

#include <string_view>

#include "plans/query.h"

namespace colarm {

/// Parses the paper's textual query form (Section 2.2) against a schema:
///
///   REPORT LOCALIZED ASSOCIATION RULES
///   [FROM <dataset-name>]
///   WHERE RANGE Location = {Seattle} AND Gender = {F}
///   [AND ITEM ATTRIBUTES {Age, Salary}]
///   [AND CONTAIN {Title = "Sw Engg"}]
///   [AND EXCLUDE {Salary = 30K-60K}]
///   [AND ANTECEDENT ATTRIBUTES {Age}]
///   HAVING minsupport = 0.75 AND minconfidence = 90%
///   [AND minlift = 1.2] [AND mincosine = 0.4] [AND minkulczynski = 60%];
///
/// Value lists must form a contiguous run of the attribute's value ids
/// (the MIP cell-granularity assumption); thresholds accept fractions
/// ("0.75") or percentages ("75%"). Keywords are case-insensitive; value
/// labels are case-sensitive and may be double-quoted when they contain
/// spaces or punctuation. The constraint clauses fill
/// LocalizedQuery::constraints (mining/constraints.h) and are pushed into
/// execution, not post-filtered; minsupport and minconfidence stay
/// mandatory while the measure floors are optional.
Result<LocalizedQuery> ParseQuery(const Schema& schema, std::string_view text);

}  // namespace colarm

#endif  // COLARM_CORE_QUERY_PARSER_H_
