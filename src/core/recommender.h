#ifndef COLARM_CORE_RECOMMENDER_H_
#define COLARM_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "mip/mip_index.h"
#include "plans/query.h"

namespace colarm {

/// One suggested localized mining request: where to look and which
/// thresholds to use, with the evidence backing the suggestion.
struct RegionSuggestion {
  LocalizedQuery query;
  uint32_t subset_size = 0;
  /// Prestored itemsets that qualify locally at query.minsupp but whose
  /// global support misses it — the Simpson's-paradox discoveries the
  /// analyst is after.
  uint32_t fresh_itemsets = 0;
  /// fresh_itemsets / all locally qualified itemsets.
  double freshness = 0.0;
  /// Ranking score (fresh volume weighted by threshold strictness).
  double score = 0.0;

  std::string ToString(const Schema& schema) const;
};

struct RecommenderOptions {
  /// Number of windows tried per attribute domain.
  uint32_t windows_per_attribute = 8;
  /// Attributes with smaller domains are not windowed (every value of a
  /// small domain is better served by an exact query).
  uint32_t min_windowable_domain = 8;
  /// The minsupport grid evaluated per window (descending preference).
  std::vector<double> minsupp_grid = {0.9, 0.8, 0.7, 0.6};
  double minconf = 0.85;
  uint32_t max_suggestions = 5;
};

/// Automatic mining of query parameters from the data — the paper's future
/// work item (a). Slides windows over every windowable attribute's domain,
/// counts fresh local itemsets per (window, minsupport) combination using
/// the MIP-index (SUPPORTED-SEARCH + one record-level counting pass per
/// window), and returns the most promising localized mining requests.
class ParameterRecommender {
 public:
  explicit ParameterRecommender(const MipIndex& index) : index_(&index) {}

  std::vector<RegionSuggestion> Suggest(
      const RecommenderOptions& options = {}) const;

 private:
  const MipIndex* index_;
};

}  // namespace colarm

#endif  // COLARM_CORE_RECOMMENDER_H_
