#ifndef COLARM_CORE_QUERY_CACHE_H_
#define COLARM_CORE_QUERY_CACHE_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "mip/mip_index.h"
#include "plans/focal_subset.h"
#include "plans/operators.h"

namespace colarm {

/// Canonical byte key of a focal box: per-attribute [lo, hi] intervals in
/// attribute order, so range order and redundant full-domain selections in
/// the query cannot defeat matching.
std::string CanonicalBoxKey(const Rect& box);

struct QueryCacheOptions {
  /// Master switch. Off (the default) keeps the engine byte- and
  /// performance-identical to a cache-less build: no probes, no inserts,
  /// no memo, no telemetry.
  bool enabled = false;
  /// Resident-byte budget for cached subsets plus their count memos;
  /// eviction keeps the total under it. 0 disables the cache outright.
  size_t byte_budget = size_t{64} << 20;
  /// Tier 3: memoize per-(box, itemset) local support counts so refinement
  /// queries on the same box (different minsupp/minconf) reuse
  /// ELIMINATE/VERIFY counts outright.
  bool count_memo = true;
};

/// Observability counters. Hits/misses/evictions/rejects are monotonic
/// totals; bytes/entries are the resident state. All are deterministic for
/// a given query sequence — independent of backend, thread count, and
/// timing.
struct CacheTelemetry {
  uint64_t hits_exact = 0;
  uint64_t hits_containment = 0;
  uint64_t hits_compose = 0;  // tier 2.5: assembled from overlapping entries
  uint64_t hits_count_memo = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t admission_rejects = 0;  // TinyLFU gate kept the victim instead
  uint64_t bytes = 0;
  uint64_t entries = 0;
};

/// One memoized itemset count for a (box, MIP) pair. `superset_counts` is
/// the producing counter's 2^L superset-sum table ([mask] = number of
/// subset records carrying every item of the mask) when that counter ran
/// the mask route (itemsets up to kMaxMaskItems); empty when only the full
/// count is known (ELIMINATE, or longer itemsets). Immutable once
/// published — readers hold it by shared_ptr so eviction never invalidates
/// an in-flight query.
struct CountMemoEntry {
  uint32_t full_count = 0;
  std::vector<uint32_t> superset_counts;
};

/// One memoized ARM mining result for a (box, constraints, local minimum
/// count) triple: the qualified (MIP id, local count) pairs the miner
/// produced, sorted by MIP id, plus the local-CFI tally the run charged.
/// Replaying it skips the from-scratch CHARM/FP-growth pass outright while
/// keeping rules and effort counters byte-identical — the qualified set is
/// a pure function of the triple. Immutable once published.
struct ArmMemoEntry {
  uint64_t local_cfis = 0;
  std::vector<std::pair<uint32_t, uint32_t>> qualified;  // (mip_id, count)
};

/// Buffered count-memo writes of one query execution. Operators record
/// into the transaction (thread-safe: parallel VERIFY shards write
/// concurrently, but always to distinct MIPs, so content is
/// deterministic); the owner commits it at a deterministic point — query
/// end for standalone execution, batch end in input order for the batch
/// executor — so cache state transitions never depend on thread timing.
class CountMemoTxn {
 public:
  explicit CountMemoTxn(std::string box_key, std::string constraint_key = {})
      : box_key_(std::move(box_key)),
        constraint_key_(std::move(constraint_key)) {}

  const std::string& box_key() const { return box_key_; }
  const std::string& constraint_key() const { return constraint_key_; }

  /// Records a full-count-only fact (ELIMINATE, long itemsets). Never
  /// downgrades an already-recorded table.
  void RecordFull(uint32_t mip_id, uint32_t full_count);

  /// Records the complete subset-count table (mask-route VERIFY).
  void RecordTable(uint32_t mip_id, uint32_t full_count,
                   std::span<const uint32_t> superset_counts);

  /// Records one ARM mining run's complete qualified set at its local
  /// minimum count (first write wins; results are deterministic).
  void RecordArmMine(uint32_t min_count, uint64_t local_cfis,
                     std::vector<std::pair<uint32_t, uint32_t>> qualified);

 private:
  friend class QueryCache;

  std::string box_key_;
  /// RuleConstraints::CacheKey() of the owning query ("" = unconstrained).
  /// Memo facts land under (constraint_key, mip_id), so queries with
  /// different constraints never serve each other's entries.
  std::string constraint_key_;
  std::mutex mutex_;
  std::map<uint32_t, CountMemoEntry> writes_;
  std::map<uint32_t, ArmMemoEntry> arm_writes_;  // keyed by min_count
};

/// Drop-in counter replaying a memoized subset-count table: satisfies the
/// GenerateRulesForItemset contract (itemset / CountFull / base_size /
/// CountOf / record_checks) with O(1) count lookups. Reports the same
/// record-check price the cold mask-route counter charges (one semantic
/// pass over the focal subset), keeping warm effort counters byte-
/// identical to cold execution.
class MemoSubsetCounter {
 public:
  MemoSubsetCounter(Itemset itemset, std::shared_ptr<const CountMemoEntry> memo,
                    uint32_t base_size)
      : itemset_(std::move(itemset)),
        memo_(std::move(memo)),
        base_size_(base_size) {}

  uint32_t CountOf(std::span<const ItemId> subset) const;
  uint32_t CountFull() const { return memo_->full_count; }
  const Itemset& itemset() const { return itemset_; }
  uint32_t base_size() const { return base_size_; }
  uint64_t record_checks() const { return base_size_; }

 private:
  Itemset itemset_;
  std::shared_ptr<const CountMemoEntry> memo_;
  uint32_t base_size_;
};

/// One resident entry's externally visible state — the unit the v4
/// persistence layer (core/cache_persist.h) saves and restores. Snapshots
/// come out oldest-recency first so restoring replays the same order.
struct CacheEntrySnapshot {
  Rect box;
  std::shared_ptr<const FocalSubset> subset;
  bool is_protected = false;  // 2Q segment (probation vs protected)
  uint64_t hits = 0;
  uint64_t derivations = 0;
  std::vector<std::pair<std::pair<std::string, uint32_t>,
                        std::shared_ptr<const CountMemoEntry>>>
      memos;
  std::vector<std::pair<std::pair<std::string, uint32_t>,
                        std::shared_ptr<const ArmMemoEntry>>>
      arm_memos;  // keyed (constraint key, local minimum count)
};

/// The session-scoped semantic cache (owned by the Engine, shared by the
/// BatchExecutor): a byte-budgeted store of materialized focal subsets
/// keyed by canonical box, with four reuse tiers —
///
///   1.   exact: a query's box is resident → copy its tid list, no scan;
///   2.   containment: a resident box *contains* the query's box → derive
///        DQ by filtering the cached subset (scalar: re-test the cached
///        tids on the narrowed attributes; bitmap: AND the cached subset's
///        bitmap with one range-OR per narrowed attribute) — exact by the
///        focal-box containment invariant;
///   2.5. compose: the box is assembled from *overlapping* resident boxes
///        via union / difference / intersection of their tid lists (slab
///        geometry keeps every shape provably exact; see PlanComposeLocked)
///        whenever a deterministic size-based cost gate prices the combine
///        below both the best containment filter and the cold scan;
///   3.   count memo: per-(box, MIP) local counts recorded by
///        ELIMINATE/VERIFY, replayed by later queries on the same box with
///        different thresholds (exact by threshold monotonicity) — plus
///        per-(box, constraints, min count) ARM mining results, so a
///        repeated ARM-plan query skips the from-scratch CHARM/FP-growth
///        pass entirely (exact: the qualified set is a pure function of
///        that triple).
///
/// Every tier is byte-identical to cold execution in rules and effort
/// counters: warm paths charge the cold semantic record-check price, the
/// same convention the bitmap backend already follows. Entries store tid
/// lists only (no backend-specific sidecars), so byte accounting,
/// eviction order, and telemetry are identical across backends.
///
/// Admission/eviction is scan-resistant (TinyLFU + 2Q) instead of pure
/// LRU: a 4-row count-min sketch estimates per-box request frequency, new
/// entries land in a probation segment, and exact hits or derivation use
/// promote an entry to the protected segment (capped at ~80% of budget).
/// Under pressure the probation LRU goes first; when a victim's sketch
/// frequency strictly exceeds the incoming entry's, the incoming entry is
/// dropped instead (`admission_rejects`), so one bulk sweep of one-off
/// boxes cannot flush a hot drill-down set. All of it is deterministic in
/// the acquisition sequence.
///
/// Thread safety: all methods are safe to call concurrently; determinism
/// of state transitions is the *callers'* contract (acquisitions and
/// commits happen at sequential points — see CountMemoTxn).
class QueryCache {
 public:
  QueryCache(const MipIndex& index, QueryCacheOptions options);

  /// Read-only probe for the optimizer: which tier would serve `box` right
  /// now (running the same composition planner Acquire runs). Touches
  /// neither recency, sketch, nor telemetry.
  CacheHint Probe(const Rect& box) const;

  /// The focal subset handed to one plan execution, plus how it was served.
  struct Lease {
    FocalSubset subset;
    CacheTier tier = CacheTier::kNone;
  };

  /// Serves the focal subset for `box` from the best tier — exact copy,
  /// containment derivation, tier-2.5 composition, or cold
  /// materialization — inserting the resulting subset and updating
  /// recency/segments, telemetry, and evictions. `record_checks` is
  /// charged exactly the cold price (the relation size, iff the box
  /// constrains anything) regardless of tier, so plan statistics stay
  /// byte-identical to cold execution. Call from sequential points only
  /// (see class comment).
  Lease Acquire(const Rect& box, ExecBackend backend, ThreadPool* pool,
                uint64_t* record_checks);

  /// Tier-3 read: the committed memo for (box, constraints, MIP), null on
  /// a miss. Does not count telemetry — callers call NoteMemoServed() when
  /// they actually serve from the returned entry.
  std::shared_ptr<const CountMemoEntry> MemoLookup(
      const std::string& box_key, const std::string& constraint_key,
      uint32_t mip_id) const;

  /// Tier-3 read for the ARM plan: the committed mining result for (box,
  /// constraints, local minimum count), null on a miss. Exact-triple match
  /// only — `local_cfis` is threshold-specific, so serving a different
  /// count would desynchronize warm effort counters from cold.
  std::shared_ptr<const ArmMemoEntry> ArmMemoLookup(
      const std::string& box_key, const std::string& constraint_key,
      uint32_t min_count) const;

  /// Telemetry: one ELIMINATE/VERIFY candidate was served from the memo.
  void NoteMemoServed();

  /// Starts a buffered memo transaction for the box under the query's
  /// constraint key (no cache state is touched until Commit).
  std::unique_ptr<CountMemoTxn> BeginTxn(const Rect& box,
                                         std::string constraint_key = {}) const;

  /// Merges a transaction's writes into the box's entry (dropped silently
  /// when the box has been evicted), bumps its recency, and evicts over
  /// budget. Call from sequential points only.
  void Commit(CountMemoTxn* txn);

  CacheTelemetry telemetry() const;
  const QueryCacheOptions& options() const { return options_; }

  /// Drops every entry and resets resident bytes (totals keep counting).
  void Clear();

  /// Resident entries, oldest recency first — the persistence layer's
  /// read side. Subsets/memos are shared, not copied.
  std::vector<CacheEntrySnapshot> Snapshot() const;

  /// Replaces residency with `entries` (recency assigned in order, oldest
  /// first), recomputes byte accounting, and evicts over budget. The
  /// frequency sketch is *not* restored — a warm-restarted cache starts
  /// with a cold sketch, which only affects admission under pressure,
  /// never served bytes. Totals keep counting, like Clear().
  void Restore(std::vector<CacheEntrySnapshot> entries);

 private:
  struct Entry {
    Rect box;
    std::shared_ptr<const FocalSubset> subset;
    /// Keyed by (constraint key, MIP id): constrained and unconstrained
    /// queries on the same box keep disjoint memo namespaces.
    std::map<std::pair<std::string, uint32_t>,
             std::shared_ptr<const CountMemoEntry>>
        memo;
    /// Keyed by (constraint key, local minimum count).
    std::map<std::pair<std::string, uint32_t>,
             std::shared_ptr<const ArmMemoEntry>>
        arm_memo;
    size_t bytes = 0;
    uint64_t last_used = 0;
    bool is_protected = false;  // 2Q segment
    uint64_t hits = 0;          // exact hits served from this entry
    uint64_t derivations = 0;   // times used as a tier-2/2.5 source
  };

  /// TinyLFU frequency sketch: 4-row count-min over box-key hashes with
  /// saturating 8-bit counters, halved every kSketchDecayPeriod
  /// recordings so stale popularity ages out. Purely a function of the
  /// acquisition sequence — deterministic.
  struct FrequencySketch {
    static constexpr uint32_t kRows = 4;
    static constexpr uint32_t kColumns = 1024;  // power of two
    static constexpr uint32_t kSketchDecayPeriod = 1024;

    void Record(uint64_t hash);
    uint32_t Estimate(uint64_t hash) const;

    std::array<std::array<uint8_t, kColumns>, kRows> counters{};
    uint32_t recordings = 0;
  };

  /// A composition route for a non-resident box, chosen by the planner.
  struct ComposePlan {
    enum class Shape { kNone, kFilter, kUnion, kDifference, kIntersect };
    Shape shape = Shape::kNone;
    /// Entry keys, shape-specific order: kFilter/{src}; kUnion/{slabs};
    /// kDifference/{outer, slabs...}; kIntersect/{a, b}.
    std::vector<std::string> sources;
    /// Outer box of the residual filter (kFilter: the source's box;
    /// kIntersect: a.box ∩ b.box).
    Rect residual_outer;
    uint32_t delta_attrs = 0;  // attrs the residual filter re-tests
    double summed_runs = 0.0;  // tid-run length the scalar merge walks
    double cost = 0.0;         // size-proxy cost (see PlanComposeLocked)
  };

  /// The tier-2/2.5 planner: enumerates the exact reuse shapes available
  /// for `box` (single-source containment filter; per-axis slab union;
  /// outer-minus-slabs difference; contained-pair intersection) and picks
  /// deterministically by an integer size-proxy cost. A multi-source shape
  /// is admitted only when strictly cheaper than both the best containment
  /// filter and the cold scan; containment itself stays ungated, matching
  /// the pre-2.5 behavior. Caller holds mutex_.
  ComposePlan PlanComposeLocked(const Rect& box) const;

  /// Materializes the planned composition. Bitmap backend: word-parallel
  /// OR/ANDNOT/AND through the SIMD dispatch plus a NarrowDq residual;
  /// scalar: merges of sorted tid runs. Both produce the exact sorted
  /// T_box. Caller holds mutex_.
  std::vector<Tid> ExecuteComposeLocked(const ComposePlan& plan,
                                        const Rect& box, ExecBackend backend,
                                        ThreadPool* pool) const;

  /// Bumps per-entry derivation accounting and promotes `key` into the
  /// protected segment. Caller holds mutex_.
  void NoteDerivationSourceLocked(const std::string& key);
  void PromoteLocked(Entry* entry);
  size_t ProtectedBytesLocked() const;

  /// Inserts (or refreshes) the entry for `key` into probation, then
  /// evicts until resident bytes fit the budget. Caller holds mutex_.
  void InsertLocked(std::string key, const Rect& box,
                    std::shared_ptr<const FocalSubset> subset);

  /// Evicts until under budget: probation LRU first, protected LRU after,
  /// with the TinyLFU admission gate protecting higher-frequency victims
  /// from `incoming_key` (null = no incoming entry to trade off). Caller
  /// holds mutex_.
  void EvictOverBudgetLocked(const std::string* incoming_key);

  const MipIndex* index_;
  QueryCacheOptions options_;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  uint64_t clock_ = 0;
  FrequencySketch sketch_;
  CacheTelemetry counters_;  // bytes/entries tracked here too
};

}  // namespace colarm

#endif  // COLARM_CORE_QUERY_CACHE_H_
