#ifndef COLARM_CORE_QUERY_CACHE_H_
#define COLARM_CORE_QUERY_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "mip/mip_index.h"
#include "plans/focal_subset.h"
#include "plans/operators.h"

namespace colarm {

/// Canonical byte key of a focal box: per-attribute [lo, hi] intervals in
/// attribute order, so range order and redundant full-domain selections in
/// the query cannot defeat matching.
std::string CanonicalBoxKey(const Rect& box);

struct QueryCacheOptions {
  /// Master switch. Off (the default) keeps the engine byte- and
  /// performance-identical to a cache-less build: no probes, no inserts,
  /// no memo, no telemetry.
  bool enabled = false;
  /// Resident-byte budget for cached subsets plus their count memos; LRU
  /// eviction keeps the total under it. 0 disables the cache outright.
  size_t byte_budget = size_t{64} << 20;
  /// Tier 3: memoize per-(box, itemset) local support counts so refinement
  /// queries on the same box (different minsupp/minconf) reuse
  /// ELIMINATE/VERIFY counts outright.
  bool count_memo = true;
};

/// Observability counters. Hits/misses/evictions are monotonic totals;
/// bytes/entries are the resident state. All are deterministic for a given
/// query sequence — independent of backend, thread count, and timing.
struct CacheTelemetry {
  uint64_t hits_exact = 0;
  uint64_t hits_containment = 0;
  uint64_t hits_count_memo = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;
  uint64_t entries = 0;
};

/// One memoized itemset count for a (box, MIP) pair. `superset_counts` is
/// the producing counter's 2^L superset-sum table ([mask] = number of
/// subset records carrying every item of the mask) when that counter ran
/// the mask route (itemsets up to kMaxMaskItems); empty when only the full
/// count is known (ELIMINATE, or longer itemsets). Immutable once
/// published — readers hold it by shared_ptr so eviction never invalidates
/// an in-flight query.
struct CountMemoEntry {
  uint32_t full_count = 0;
  std::vector<uint32_t> superset_counts;
};

/// Buffered count-memo writes of one query execution. Operators record
/// into the transaction (thread-safe: parallel VERIFY shards write
/// concurrently, but always to distinct MIPs, so content is
/// deterministic); the owner commits it at a deterministic point — query
/// end for standalone execution, batch end in input order for the batch
/// executor — so cache state transitions never depend on thread timing.
class CountMemoTxn {
 public:
  explicit CountMemoTxn(std::string box_key, std::string constraint_key = {})
      : box_key_(std::move(box_key)),
        constraint_key_(std::move(constraint_key)) {}

  const std::string& box_key() const { return box_key_; }
  const std::string& constraint_key() const { return constraint_key_; }

  /// Records a full-count-only fact (ELIMINATE, long itemsets). Never
  /// downgrades an already-recorded table.
  void RecordFull(uint32_t mip_id, uint32_t full_count);

  /// Records the complete subset-count table (mask-route VERIFY).
  void RecordTable(uint32_t mip_id, uint32_t full_count,
                   std::span<const uint32_t> superset_counts);

 private:
  friend class QueryCache;

  std::string box_key_;
  /// RuleConstraints::CacheKey() of the owning query ("" = unconstrained).
  /// Memo facts land under (constraint_key, mip_id), so queries with
  /// different constraints never serve each other's entries.
  std::string constraint_key_;
  std::mutex mutex_;
  std::map<uint32_t, CountMemoEntry> writes_;
};

/// Drop-in counter replaying a memoized subset-count table: satisfies the
/// GenerateRulesForItemset contract (itemset / CountFull / base_size /
/// CountOf / record_checks) with O(1) count lookups. Reports the same
/// record-check price the cold mask-route counter charges (one semantic
/// pass over the focal subset), keeping warm effort counters byte-
/// identical to cold execution.
class MemoSubsetCounter {
 public:
  MemoSubsetCounter(Itemset itemset, std::shared_ptr<const CountMemoEntry> memo,
                    uint32_t base_size)
      : itemset_(std::move(itemset)),
        memo_(std::move(memo)),
        base_size_(base_size) {}

  uint32_t CountOf(std::span<const ItemId> subset) const;
  uint32_t CountFull() const { return memo_->full_count; }
  const Itemset& itemset() const { return itemset_; }
  uint32_t base_size() const { return base_size_; }
  uint64_t record_checks() const { return base_size_; }

 private:
  Itemset itemset_;
  std::shared_ptr<const CountMemoEntry> memo_;
  uint32_t base_size_;
};

/// The session-scoped semantic cache (owned by the Engine, shared by the
/// BatchExecutor): an LRU, byte-budgeted store of materialized focal
/// subsets keyed by canonical box, with three reuse tiers —
///
///   1. exact: a query's box is resident → copy its tid list, no scan;
///   2. containment: a resident box *contains* the query's box → derive DQ
///      by filtering the cached subset (scalar: re-test the cached tids on
///      the narrowed attributes; bitmap: AND the cached subset's bitmap
///      with one range-OR per narrowed attribute) — exact by the focal-box
///      containment invariant;
///   3. count memo: per-(box, MIP) local counts recorded by
///      ELIMINATE/VERIFY, replayed by later queries on the same box with
///      different thresholds (exact by threshold monotonicity).
///
/// Every tier is byte-identical to cold execution in rules and effort
/// counters: warm paths charge the cold semantic record-check price, the
/// same convention the bitmap backend already follows. Entries store tid
/// lists only (no backend-specific sidecars), so byte accounting,
/// eviction order, and telemetry are identical across backends.
///
/// Thread safety: all methods are safe to call concurrently; determinism
/// of state transitions is the *callers'* contract (acquisitions and
/// commits happen at sequential points — see CountMemoTxn).
class QueryCache {
 public:
  QueryCache(const MipIndex& index, QueryCacheOptions options);

  /// Read-only probe for the optimizer: which tier would serve `box` right
  /// now. Touches neither recency nor telemetry.
  CacheHint Probe(const Rect& box) const;

  /// The focal subset handed to one plan execution, plus how it was served.
  struct Lease {
    FocalSubset subset;
    CacheTier tier = CacheTier::kNone;
  };

  /// Serves the focal subset for `box` from the best tier — exact copy,
  /// containment derivation, or cold materialization — inserting the
  /// resulting subset and updating LRU recency, telemetry, and evictions.
  /// `record_checks` is charged exactly the cold price (the relation size,
  /// iff the box constrains anything) regardless of tier, so plan
  /// statistics stay byte-identical to cold execution. Call from
  /// sequential points only (see class comment).
  Lease Acquire(const Rect& box, ExecBackend backend, ThreadPool* pool,
                uint64_t* record_checks);

  /// Tier-3 read: the committed memo for (box, constraints, MIP), null on
  /// a miss. Does not count telemetry — callers call NoteMemoServed() when
  /// they actually serve from the returned entry.
  std::shared_ptr<const CountMemoEntry> MemoLookup(
      const std::string& box_key, const std::string& constraint_key,
      uint32_t mip_id) const;

  /// Telemetry: one ELIMINATE/VERIFY candidate was served from the memo.
  void NoteMemoServed();

  /// Starts a buffered memo transaction for the box under the query's
  /// constraint key (no cache state is touched until Commit).
  std::unique_ptr<CountMemoTxn> BeginTxn(const Rect& box,
                                         std::string constraint_key = {}) const;

  /// Merges a transaction's writes into the box's entry (dropped silently
  /// when the box has been evicted), bumps its recency, and evicts over
  /// budget. Call from sequential points only.
  void Commit(CountMemoTxn* txn);

  CacheTelemetry telemetry() const;
  const QueryCacheOptions& options() const { return options_; }

  /// Drops every entry and resets resident bytes (totals keep counting).
  void Clear();

 private:
  struct Entry {
    Rect box;
    std::shared_ptr<const FocalSubset> subset;
    /// Keyed by (constraint key, MIP id): constrained and unconstrained
    /// queries on the same box keep disjoint memo namespaces.
    std::map<std::pair<std::string, uint32_t>,
             std::shared_ptr<const CountMemoEntry>>
        memo;
    size_t bytes = 0;
    uint64_t last_used = 0;
  };

  /// Containment source for `box`: the resident entry with the smallest
  /// subset (cheapest filter), key order breaking ties — deterministic, so
  /// Probe and Acquire agree. Returns entries_.end() when nothing
  /// contains the box. Caller holds mutex_.
  std::map<std::string, Entry>::const_iterator FindContaining(
      const Rect& box) const;

  /// Inserts (or refreshes) the entry for `key`, then evicts least-
  /// recently-used entries until resident bytes fit the budget. Caller
  /// holds mutex_.
  void InsertLocked(std::string key, const Rect& box,
                    std::shared_ptr<const FocalSubset> subset);
  void EvictOverBudgetLocked();

  const MipIndex* index_;
  QueryCacheOptions options_;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  uint64_t clock_ = 0;
  CacheTelemetry counters_;  // bytes/entries tracked here too
};

}  // namespace colarm

#endif  // COLARM_CORE_QUERY_CACHE_H_
