#include "core/query_parser.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace colarm {

namespace {

enum class TokenKind { kWord, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        ++pos_;
        continue;
      }
      if (c == '{' || c == '}' || c == '=' || c == ',' || c == ';') {
        tokens.push_back({TokenKind::kSymbol, std::string(1, c)});
        ++pos_;
        continue;
      }
      if (c == '"') {
        ++pos_;
        size_t start = pos_;
        while (pos_ < input_.size() && input_[pos_] != '"') ++pos_;
        if (pos_ == input_.size()) {
          return Status::ParseError("unterminated string literal");
        }
        tokens.push_back(
            {TokenKind::kString, std::string(input_.substr(start, pos_ - start))});
        ++pos_;
        continue;
      }
      if (IsWordChar(c)) {
        size_t start = pos_;
        while (pos_ < input_.size() && IsWordChar(input_[pos_])) ++pos_;
        tokens.push_back(
            {TokenKind::kWord, std::string(input_.substr(start, pos_ - start))});
        continue;
      }
      return Status::ParseError(
          StrFormat("unexpected character '%c' at offset %zu", c, pos_));
    }
    tokens.push_back({TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  static bool IsWordChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
           c == '%' || c == '[' || c == ')' || c == ']' || c == '(' ||
           c == '<' || c == '>';
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(const Schema& schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  Result<LocalizedQuery> Parse() {
    LocalizedQuery query;
    COLARM_RETURN_IF_ERROR(ExpectKeyword("REPORT"));
    COLARM_RETURN_IF_ERROR(ExpectKeyword("LOCALIZED"));
    COLARM_RETURN_IF_ERROR(ExpectKeyword("ASSOCIATION"));
    COLARM_RETURN_IF_ERROR(ExpectKeyword("RULES"));
    if (PeekKeyword("FROM")) {
      Advance();
      if (Peek().kind != TokenKind::kWord &&
          Peek().kind != TokenKind::kString) {
        return Status::ParseError("expected dataset name after FROM");
      }
      Advance();  // dataset name is informational only
    }
    COLARM_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    COLARM_RETURN_IF_ERROR(ExpectKeyword("RANGE"));
    COLARM_RETURN_IF_ERROR(ParseRange(&query));
    while (PeekKeyword("AND")) {
      Advance();
      if (PeekKeyword("ITEM")) {
        Advance();
        COLARM_RETURN_IF_ERROR(ExpectKeyword("ATTRIBUTES"));
        COLARM_RETURN_IF_ERROR(ParseItemAttributes(&query));
      } else if (PeekKeyword("CONTAIN")) {
        Advance();
        COLARM_RETURN_IF_ERROR(
            ParseItemList(&query.constraints.must_contain, "CONTAIN"));
      } else if (PeekKeyword("EXCLUDE")) {
        Advance();
        COLARM_RETURN_IF_ERROR(
            ParseItemList(&query.constraints.must_exclude, "EXCLUDE"));
      } else if (PeekKeyword("ANTECEDENT")) {
        Advance();
        COLARM_RETURN_IF_ERROR(ExpectKeyword("ATTRIBUTES"));
        COLARM_RETURN_IF_ERROR(ParseAntecedentAttributes(&query));
      } else if (PeekKeyword("HAVING")) {
        return Status::ParseError("HAVING must not be preceded by AND");
      } else {
        COLARM_RETURN_IF_ERROR(ParseRange(&query));
      }
    }
    COLARM_RETURN_IF_ERROR(ExpectKeyword("HAVING"));
    COLARM_RETURN_IF_ERROR(ParseThreshold(&query));
    while (PeekKeyword("AND")) {
      Advance();
      COLARM_RETURN_IF_ERROR(ParseThreshold(&query));
    }
    if (Peek().kind == TokenKind::kSymbol && Peek().text == ";") Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input after query: '" +
                                Peek().text + "'");
    }
    if (!saw_minsupp_ || !saw_minconf_) {
      return Status::ParseError(
          "HAVING must set both minsupport and minconfidence");
    }
    COLARM_RETURN_IF_ERROR(query.Validate(schema_));
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().kind == TokenKind::kWord &&
           EqualsIgnoreCase(Peek().text, keyword);
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) {
      return Status::ParseError(StrFormat("expected keyword '%s', got '%s'",
                                          std::string(keyword).c_str(),
                                          Peek().text.c_str()));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(char symbol) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text[0] != symbol) {
      return Status::ParseError(StrFormat("expected '%c', got '%s'", symbol,
                                          Peek().text.c_str()));
    }
    Advance();
    return Status::OK();
  }

  // <attr> = { label [, label]* }
  Status ParseRange(LocalizedQuery* query) {
    if (Peek().kind != TokenKind::kWord && Peek().kind != TokenKind::kString) {
      return Status::ParseError("expected attribute name in RANGE");
    }
    Result<AttrId> attr = schema_.AttrIdByName(Peek().text);
    if (!attr.ok()) return attr.status();
    Advance();
    COLARM_RETURN_IF_ERROR(ExpectSymbol('='));
    COLARM_RETURN_IF_ERROR(ExpectSymbol('{'));
    std::vector<ValueId> values;
    while (true) {
      if (Peek().kind != TokenKind::kWord &&
          Peek().kind != TokenKind::kString) {
        return Status::ParseError("expected value label in RANGE list");
      }
      Result<ValueId> value = schema_.ValueIdByLabel(*attr, Peek().text);
      if (!value.ok()) return value.status();
      values.push_back(*value);
      Advance();
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    COLARM_RETURN_IF_ERROR(ExpectSymbol('}'));
    std::sort(values.begin(), values.end());
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i] != values[i - 1] + 1) {
        return Status::InvalidArgument(
            "RANGE values must form a contiguous interval of the "
            "discretized domain (cell granularity)");
      }
    }
    query->ranges.push_back({*attr, values.front(), values.back()});
    return Status::OK();
  }

  // { attr [, attr]* }
  Status ParseItemAttributes(LocalizedQuery* query) {
    COLARM_RETURN_IF_ERROR(ExpectSymbol('{'));
    while (true) {
      if (Peek().kind != TokenKind::kWord &&
          Peek().kind != TokenKind::kString) {
        return Status::ParseError("expected attribute name in ITEM ATTRIBUTES");
      }
      Result<AttrId> attr = schema_.AttrIdByName(Peek().text);
      if (!attr.ok()) return attr.status();
      query->item_attrs.push_back(*attr);
      Advance();
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    return ExpectSymbol('}');
  }

  // { attr = label [, attr = label]* } — CONTAIN / EXCLUDE item list.
  Status ParseItemList(Itemset* out, const char* clause) {
    COLARM_RETURN_IF_ERROR(ExpectSymbol('{'));
    while (true) {
      if (Peek().kind != TokenKind::kWord &&
          Peek().kind != TokenKind::kString) {
        return Status::ParseError(
            StrFormat("expected attribute name in %s list, got '%s'", clause,
                      Peek().text.c_str()));
      }
      Result<AttrId> attr = schema_.AttrIdByName(Peek().text);
      if (!attr.ok()) return attr.status();
      Advance();
      COLARM_RETURN_IF_ERROR(ExpectSymbol('='));
      if (Peek().kind != TokenKind::kWord &&
          Peek().kind != TokenKind::kString) {
        return Status::ParseError(
            StrFormat("expected value label in %s list, got '%s'", clause,
                      Peek().text.c_str()));
      }
      Result<ValueId> value = schema_.ValueIdByLabel(*attr, Peek().text);
      if (!value.ok()) return value.status();
      out->push_back(schema_.ItemOf(*attr, *value));
      Advance();
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    COLARM_RETURN_IF_ERROR(ExpectSymbol('}'));
    // Canonical form Validate expects; repeated items are set-semantics.
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
    return Status::OK();
  }

  // { attr [, attr]* } pinned to the antecedent side.
  Status ParseAntecedentAttributes(LocalizedQuery* query) {
    COLARM_RETURN_IF_ERROR(ExpectSymbol('{'));
    std::vector<AttrId>& out = query->constraints.antecedent_only;
    while (true) {
      if (Peek().kind != TokenKind::kWord &&
          Peek().kind != TokenKind::kString) {
        return Status::ParseError(
            "expected attribute name in ANTECEDENT ATTRIBUTES, got '" +
            Peek().text + "'");
      }
      Result<AttrId> attr = schema_.AttrIdByName(Peek().text);
      if (!attr.ok()) return attr.status();
      out.push_back(*attr);
      Advance();
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    COLARM_RETURN_IF_ERROR(ExpectSymbol('}'));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return Status::OK();
  }

  // minsupport/minconfidence (required) or a measure floor: minlift,
  // mincosine, minkulczynski, minantsupp.
  Status ParseThreshold(LocalizedQuery* query) {
    double* slot = nullptr;
    if (PeekKeyword("minsupport") || PeekKeyword("minsupp")) {
      slot = &query->minsupp;
      saw_minsupp_ = true;
    } else if (PeekKeyword("minconfidence") || PeekKeyword("minconf")) {
      slot = &query->minconf;
      saw_minconf_ = true;
    } else if (PeekKeyword("minlift")) {
      slot = &query->constraints.min_lift;
    } else if (PeekKeyword("mincosine")) {
      slot = &query->constraints.min_cosine;
    } else if (PeekKeyword("minkulczynski")) {
      slot = &query->constraints.min_kulczynski;
    } else if (PeekKeyword("minantsupp") || PeekKeyword("minantsupport")) {
      slot = &query->constraints.min_antecedent_supp;
    } else {
      return Status::ParseError(
          "expected a HAVING threshold (minsupport, minconfidence, minlift, "
          "mincosine, minkulczynski, minantsupp), got '" +
          Peek().text + "'");
    }
    Advance();
    COLARM_RETURN_IF_ERROR(ExpectSymbol('='));
    if (Peek().kind != TokenKind::kWord) {
      return Status::ParseError("expected threshold value");
    }
    std::string text = Peek().text;
    Advance();
    bool percent = !text.empty() && text.back() == '%';
    if (percent) text.pop_back();
    double value = 0.0;
    if (!ParseDouble(text, &value)) {
      return Status::ParseError("malformed threshold '" + text + "'");
    }
    if (percent) value /= 100.0;
    *slot = value;
    return Status::OK();
  }

  const Schema& schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool saw_minsupp_ = false;
  bool saw_minconf_ = false;
};

}  // namespace

Result<LocalizedQuery> ParseQuery(const Schema& schema,
                                  std::string_view text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(schema, std::move(tokens.value()));
  return parser.Parse();
}

}  // namespace colarm
