#ifndef COLARM_CORE_ENGINE_H_
#define COLARM_CORE_ENGINE_H_

#include <memory>

#include "common/thread_pool.h"
#include "core/optimizer.h"
#include "core/query_cache.h"
#include "mip/mip_index.h"
#include "plans/plans.h"

namespace colarm {

struct EngineOptions {
  MipIndexOptions index;
  RuleGenOptions rulegen;
  /// Micro-calibrate cost constants on this machine at build time; when
  /// false, portable defaults are used (deterministic optimizer behaviour
  /// for tests).
  bool calibrate = true;
  CostConstants cost_constants;
  /// Algorithm the ARM baseline plan uses to mine the focal subset.
  ArmMinerKind arm_miner = ArmMinerKind::kCharm;
  /// Record-level execution backend for every query this engine runs.
  /// kBitmap executes on the vertical bitmap index; results and effort
  /// counters are byte-identical to kScalar, only wall time differs. The
  /// cost model is told the backend so its per-operator constants match
  /// what actually executes.
  ExecBackend backend = ExecBackend::kScalar;
  /// When non-empty, Build() first tries to load the MIP-index from this
  /// file (validating the dataset fingerprint and build options) and, on a
  /// miss, mines it and writes the file — preprocess once across process
  /// lifetimes.
  std::string index_cache_path;
  /// Degree of parallelism for the offline index build and the online
  /// record-level operators: 0 = hardware concurrency, 1 = the exact
  /// single-threaded legacy path (no pool is created). Results and effort
  /// counters are byte-identical across any value — parallelism only
  /// changes wall time.
  unsigned num_threads = 0;
  /// Session cache (core/query_cache.h): focal-subset reuse across
  /// queries and batches plus the per-(box, itemset) count memo. Disabled
  /// by default — the default options preserve cache-less behaviour
  /// exactly. When enabled, warm execution stays byte-identical to cold in
  /// rules, effort counters, and plan choice; only wall time and the
  /// decision's cache-provenance field change.
  QueryCacheOptions cache;
};

/// Outcome of one query: the localized rules plus which plan ran, why, and
/// what it cost.
struct QueryResult {
  RuleSet rules;
  PlanKind plan_used = PlanKind::kSEV;
  bool chosen_by_optimizer = false;
  PlanStats stats;
  OptimizerDecision decision;
  /// Session-cache telemetry for this query: hit/miss/eviction counters as
  /// deltas attributable to the query, bytes/entries as the resident state
  /// after it. All zero when the cache is disabled.
  CacheTelemetry cache;
};

/// Per-call execution context for multi-tenant serving (src/server): lets
/// one shared engine run a query against a caller-owned session cache — a
/// tenant's drill-down sequence hits its own containment tiers without
/// polluting other tenants' — under a cooperative cancellation token
/// (per-request deadline, shutdown drain). Default-constructed it is
/// byte-identical to the plain entry points.
struct SessionContext {
  /// Overrides the engine-owned cache for this call; null keeps the
  /// engine's (which may itself be null = caching off). The cache must
  /// have been built over this engine's index.
  QueryCache* cache = nullptr;
  /// When set, the plan executors poll it and the call returns
  /// kDeadlineExceeded instead of a result once it fires.
  const CancelToken* cancel = nullptr;
};

/// The top-level COLARM engine (Figure 2): owns the offline-built MIP-index
/// plus statistics and the cost-based optimizer, and executes online
/// localized rule mining queries with the optimizer-selected plan.
///
/// Typical use:
///
///   Dataset data = ...;                       // must outlive the engine
///   EngineOptions options;
///   options.index.primary_support = 0.6;
///   auto engine = Engine::Build(data, options).value();
///   LocalizedQuery query{.ranges = {{0, 2, 5}}, .minsupp = .8, .minconf = .9};
///   QueryResult result = engine->Execute(query).value();
class Engine {
 public:
  /// Runs the offline preprocessing phase (CHARM + MIP-index + statistics
  /// + calibration). The dataset reference must outlive the engine.
  static Result<std::unique_ptr<Engine>> Build(const Dataset& dataset,
                                               const EngineOptions& options);

  /// Executes `query` with the plan the optimizer picks.
  Result<QueryResult> Execute(const LocalizedQuery& query) const;

  /// Executes `query` under a session context: against the context's cache
  /// (per-tenant sessions) and cancellation token (request deadlines).
  Result<QueryResult> Execute(const LocalizedQuery& query,
                              const SessionContext& session) const;

  /// Executes `query` with a caller-forced plan (used by benchmarks and
  /// the plan-equivalence tests).
  Result<QueryResult> ExecuteWithPlan(const LocalizedQuery& query,
                                      PlanKind kind) const;

  /// Cost estimates for all plans without executing anything.
  Result<OptimizerDecision> Explain(const LocalizedQuery& query) const;

  /// Explain under a session context: the cache hint comes from the
  /// context's cache, so a tenant sees its own warm-tier repricing.
  Result<OptimizerDecision> Explain(const LocalizedQuery& query,
                                    const SessionContext& session) const;

  const MipIndex& index() const { return *index_; }
  const Optimizer& optimizer() const { return *optimizer_; }
  const EngineOptions& options() const { return options_; }

  /// The engine's worker pool; null when num_threads resolved to 1.
  ThreadPool* pool() const { return pool_.get(); }

  /// The session cache; null when disabled (the default) or when the byte
  /// budget is 0. Shared with the BatchExecutor.
  QueryCache* cache() const { return cache_.get(); }

 private:
  Engine() = default;

  Result<QueryResult> Run(const LocalizedQuery& query, PlanKind forced,
                          bool use_optimizer,
                          const SessionContext& session = {}) const;

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<MipIndex> index_;
  std::unique_ptr<CardinalityEstimator> cardinality_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<QueryCache> cache_;
};

}  // namespace colarm

#endif  // COLARM_CORE_ENGINE_H_
