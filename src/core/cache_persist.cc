#include "core/cache_persist.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <span>

#include "common/string_util.h"
#include "mip/serialize.h"

namespace colarm {

namespace {

constexpr uint32_t kMagic = 0x434c524d;  // "CLRM", same family as the index
constexpr uint32_t kVersion = 4;  // v1-3 are MIP-index formats; never reused
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;
constexpr size_t kPayloadAlign = 64;

uint64_t Fnv(std::span<const unsigned char> bytes) {
  uint64_t hash = kFnvOffset;
  for (unsigned char b : bytes) hash = (hash ^ b) * kFnvPrime;
  return hash;
}

Status Corrupt(const std::string& what) {
  return Status::ParseError("corrupt cache file: " + what);
}

class BufWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Bytes(const void* data, size_t size) { Raw(data, size); }

  /// Zero-pads so the next write lands on a `kPayloadAlign` file offset.
  void AlignPayload() {
    while (buf_.size() % kPayloadAlign != 0) buf_.push_back(0);
  }

  size_t size() const { return buf_.size(); }
  std::span<const unsigned char> Slice(size_t from) const {
    return std::span<const unsigned char>(buf_).subspan(from);
  }
  std::span<const unsigned char> All() const { return buf_; }
  const std::vector<unsigned char>& buffer() const { return buf_; }

 private:
  void Raw(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), bytes, bytes + size);
  }
  std::vector<unsigned char> buf_;
};

/// Bounds-checked cursor over the mapped (or slurped) file image. Every
/// read is validated against the remaining length before dereferencing —
/// truncation can never run the parser off the mapping.
class BufReader {
 public:
  explicit BufReader(std::span<const unsigned char> data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t offset() const { return offset_; }
  size_t remaining() const { return ok_ ? data_.size() - offset_ : 0; }

  uint8_t U8() { return Raw<uint8_t>(); }
  uint16_t U16() { return Raw<uint16_t>(); }
  uint32_t U32() { return Raw<uint32_t>(); }
  uint64_t U64() { return Raw<uint64_t>(); }

  bool ReadBytes(void* out, size_t size) {
    if (!Ensure(size)) return false;
    std::memcpy(out, data_.data() + offset_, size);
    offset_ += size;
    return true;
  }

  bool SkipPadding() {
    while (offset_ % kPayloadAlign != 0) {
      if (U8() != 0) return false;  // padding must be zero bytes
      if (!ok_) return false;
    }
    return ok_;
  }

  std::span<const unsigned char> Window(size_t from, size_t to) const {
    return data_.subspan(from, to - from);
  }

 private:
  bool Ensure(size_t size) {
    if (!ok_ || data_.size() - offset_ < size) {
      ok_ = false;
      return false;
    }
    return true;
  }
  template <typename T>
  T Raw() {
    T value{};
    if (Ensure(sizeof(T))) {
      std::memcpy(&value, data_.data() + offset_, sizeof(T));
      offset_ += sizeof(T);
    }
    return value;
  }

  std::span<const unsigned char> data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

/// The whole file, mmap'ed when possible (PROT_READ MAP_PRIVATE: the page
/// cache serves warm restarts without a copy), slurped otherwise.
class FileImage {
 public:
  ~FileImage() {
    if (mapped_ != nullptr && mapped_ != MAP_FAILED) {
      ::munmap(mapped_, size_);
    }
  }

  Status Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        mapped_ = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                         MAP_PRIVATE, fd, 0);
        if (mapped_ != MAP_FAILED) size_ = static_cast<size_t>(st.st_size);
      }
      ::close(fd);
      if (mapped_ != nullptr && mapped_ != MAP_FAILED) return Status::OK();
      mapped_ = nullptr;
    }
    // Fallback: buffered read (also the path for empty/odd files).
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open '" + path + "'");
    fallback_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    if (in.bad()) return Status::IoError("cannot read '" + path + "'");
    return Status::OK();
  }

  std::span<const unsigned char> data() const {
    if (mapped_ != nullptr) {
      return {static_cast<const unsigned char*>(mapped_), size_};
    }
    return {reinterpret_cast<const unsigned char*>(fallback_.data()),
            fallback_.size()};
  }

 private:
  void* mapped_ = nullptr;
  size_t size_ = 0;
  std::string fallback_;
};

}  // namespace

Status SaveQueryCache(const QueryCache& cache, const MipIndex& index,
                      const std::string& path) {
  const std::vector<CacheEntrySnapshot> entries = cache.Snapshot();
  const uint32_t dims = index.dataset().num_attributes();

  BufWriter w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U64(IndexFingerprint(index));
  w.U32(dims);
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const CacheEntrySnapshot& entry : entries) {
    const size_t section_start = w.size();
    w.U8(entry.is_protected ? 1 : 0);
    w.U64(entry.hits);
    w.U64(entry.derivations);
    for (uint32_t d = 0; d < dims; ++d) {
      w.U16(entry.box.lo(d));
      w.U16(entry.box.hi(d));
    }
    w.U32(static_cast<uint32_t>(entry.subset->tids.size()));
    w.U32(static_cast<uint32_t>(entry.memos.size()));
    w.U32(static_cast<uint32_t>(entry.arm_memos.size()));
    w.AlignPayload();
    w.Bytes(entry.subset->tids.data(),
            entry.subset->tids.size() * sizeof(Tid));
    for (const auto& [memo_key, memo] : entry.memos) {
      w.U32(static_cast<uint32_t>(memo_key.first.size()));
      w.Bytes(memo_key.first.data(), memo_key.first.size());
      w.U32(memo_key.second);
      w.U32(memo->full_count);
      w.U32(static_cast<uint32_t>(memo->superset_counts.size()));
      w.Bytes(memo->superset_counts.data(),
              memo->superset_counts.size() * sizeof(uint32_t));
    }
    for (const auto& [arm_key, memo] : entry.arm_memos) {
      w.U32(static_cast<uint32_t>(arm_key.first.size()));
      w.Bytes(arm_key.first.data(), arm_key.first.size());
      w.U32(arm_key.second);  // local minimum count
      w.U64(memo->local_cfis);
      w.U32(static_cast<uint32_t>(memo->qualified.size()));
      for (const auto& [mip_id, count] : memo->qualified) {
        w.U32(mip_id);
        w.U32(count);
      }
    }
    w.U64(Fnv(w.Slice(section_start)));
  }
  w.U64(Fnv(w.All()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(w.buffer().data()),
            static_cast<std::streamsize>(w.buffer().size()));
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Status LoadQueryCache(const MipIndex& index, const std::string& path,
                      QueryCache* cache) {
  FileImage image;
  Status opened = image.Open(path);
  if (!opened.ok()) return opened;
  const std::span<const unsigned char> data = image.data();

  BufReader r(data);
  if (r.U32() != kMagic || !r.ok()) {
    return Status::ParseError("'" + path + "' is not a COLARM cache file");
  }
  const uint32_t version = r.U32();
  if (version != kVersion || !r.ok()) {
    return Status::ParseError(
        StrFormat("unsupported cache version %u", version));
  }
  if (r.U64() != IndexFingerprint(index) || !r.ok()) {
    return Status::FailedPrecondition(
        "cache file was saved against a different index");
  }
  const Dataset& dataset = index.dataset();
  const Schema& schema = dataset.schema();
  const uint32_t dims = r.U32();
  if (dims != dataset.num_attributes()) {
    return Corrupt("dimensionality mismatch");
  }
  const uint32_t entry_count = r.U32();
  if (!r.ok()) return Corrupt("truncated header");
  // Bound the entry count by what the file could possibly hold before
  // reserving anything: each section takes at least its fixed fields plus
  // the section checksum.
  const uint64_t min_entry_bytes = 29 + 4ull * dims + 8;
  if (entry_count > r.remaining() / min_entry_bytes) {
    return Corrupt("entry count exceeds file size");
  }

  std::vector<CacheEntrySnapshot> entries;
  entries.reserve(entry_count);
  for (uint32_t i = 0; i < entry_count; ++i) {
    const size_t section_start = r.offset();
    CacheEntrySnapshot snap;
    const uint8_t protected_flag = r.U8();
    if (protected_flag > 1) return Corrupt("segment flag out of range");
    snap.is_protected = protected_flag != 0;
    snap.hits = r.U64();
    snap.derivations = r.U64();
    Rect box = Rect::MakeEmpty(dims);
    for (uint32_t d = 0; d < dims; ++d) {
      const ValueId lo = r.U16();
      const ValueId hi = r.U16();
      if (!r.ok()) return Corrupt("truncated section");
      if (lo > hi || hi >= schema.attribute(d).domain_size()) {
        return Corrupt("box outside the attribute domain");
      }
      box.SetInterval(d, lo, hi);
    }
    snap.box = box;
    const uint32_t tid_count = r.U32();
    const uint32_t memo_count = r.U32();
    const uint32_t arm_count = r.U32();
    if (!r.ok()) return Corrupt("truncated section");
    if (tid_count > dataset.num_records()) {
      return Corrupt("tid count exceeds the relation");
    }
    if (!r.SkipPadding()) return Corrupt("nonzero payload padding");
    if (tid_count * sizeof(Tid) > r.remaining()) {
      return Corrupt("tid payload exceeds file size");
    }
    FocalSubset subset;
    subset.box = box;
    subset.tids.resize(tid_count);
    if (tid_count > 0 &&
        !r.ReadBytes(subset.tids.data(), tid_count * sizeof(Tid))) {
      return Corrupt("truncated tid payload");
    }
    for (uint32_t t = 0; t < tid_count; ++t) {
      if (subset.tids[t] >= dataset.num_records() ||
          (t > 0 && subset.tids[t] <= subset.tids[t - 1])) {
        return Corrupt("tid list is not strictly increasing in range");
      }
    }
    snap.subset = std::make_shared<const FocalSubset>(std::move(subset));
    for (uint32_t m = 0; m < memo_count; ++m) {
      const uint32_t key_len = r.U32();
      if (!r.ok() || key_len > r.remaining()) {
        return Corrupt("memo key exceeds file size");
      }
      std::string constraint_key(key_len, '\0');
      if (key_len > 0 && !r.ReadBytes(constraint_key.data(), key_len)) {
        return Corrupt("truncated memo key");
      }
      const uint32_t mip_id = r.U32();
      if (!r.ok() || mip_id >= index.num_mips()) {
        return Corrupt("memo MIP id out of range");
      }
      CountMemoEntry memo;
      memo.full_count = r.U32();
      if (memo.full_count > dataset.num_records()) {
        return Corrupt("memo count exceeds the relation");
      }
      const uint32_t table_len = r.U32();
      if (!r.ok() || table_len > r.remaining() / sizeof(uint32_t)) {
        return Corrupt("memo table exceeds file size");
      }
      memo.superset_counts.resize(table_len);
      if (table_len > 0 &&
          !r.ReadBytes(memo.superset_counts.data(),
                       table_len * sizeof(uint32_t))) {
        return Corrupt("truncated memo table");
      }
      snap.memos.emplace_back(
          std::make_pair(std::move(constraint_key), mip_id),
          std::make_shared<const CountMemoEntry>(std::move(memo)));
    }
    for (uint32_t m = 0; m < arm_count; ++m) {
      const uint32_t key_len = r.U32();
      if (!r.ok() || key_len > r.remaining()) {
        return Corrupt("ARM memo key exceeds file size");
      }
      std::string constraint_key(key_len, '\0');
      if (key_len > 0 && !r.ReadBytes(constraint_key.data(), key_len)) {
        return Corrupt("truncated ARM memo key");
      }
      const uint32_t min_count = r.U32();
      if (!r.ok() || min_count > dataset.num_records()) {
        return Corrupt("ARM memo minimum count exceeds the relation");
      }
      ArmMemoEntry memo;
      memo.local_cfis = r.U64();
      const uint32_t pair_count = r.U32();
      if (!r.ok() || pair_count > r.remaining() / (2 * sizeof(uint32_t))) {
        return Corrupt("ARM memo qualified set exceeds file size");
      }
      memo.qualified.reserve(pair_count);
      for (uint32_t p = 0; p < pair_count; ++p) {
        const uint32_t mip_id = r.U32();
        const uint32_t count = r.U32();
        if (!r.ok() || mip_id >= index.num_mips()) {
          return Corrupt("ARM memo MIP id out of range");
        }
        if (count > tid_count) {
          return Corrupt("ARM memo count exceeds the subset");
        }
        if (p > 0 && mip_id <= memo.qualified.back().first) {
          return Corrupt("ARM memo qualified set is not strictly increasing");
        }
        memo.qualified.emplace_back(mip_id, count);
      }
      snap.arm_memos.emplace_back(
          std::make_pair(std::move(constraint_key), min_count),
          std::make_shared<const ArmMemoEntry>(std::move(memo)));
    }
    const uint64_t section_hash = Fnv(r.Window(section_start, r.offset()));
    if (r.U64() != section_hash || !r.ok()) {
      return Corrupt("section checksum mismatch");
    }
    entries.push_back(std::move(snap));
  }
  const uint64_t file_hash = Fnv(r.Window(0, r.offset()));
  if (r.U64() != file_hash || !r.ok()) return Corrupt("checksum mismatch");
  if (r.remaining() != 0) return Corrupt("trailing garbage");

  cache->Restore(std::move(entries));
  return Status::OK();
}

}  // namespace colarm
