#include "core/export.h"

#include <sstream>

#include "common/string_util.h"
#include "mining/measures.h"

namespace colarm {

namespace {

std::string JoinItems(const Schema& schema, const Itemset& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ';';
    out += schema.ItemToString(items[i]);
  }
  return out;
}

std::string CsvQuote(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void RulesToCsv(const Dataset& dataset, const RuleSet& rules,
                const FocalSubset& subset, const ExportOptions& options,
                std::ostream& out) {
  const Schema& schema = dataset.schema();
  out << "antecedent,consequent,support,confidence,itemset_count,"
         "antecedent_count,base_count";
  if (options.with_measures) {
    out << ",lift,cosine,kulczynski,all_confidence,max_confidence,leverage,"
           "imbalance";
  }
  out << "\n";
  for (const Rule& rule : rules.rules) {
    out << CsvQuote(JoinItems(schema, rule.antecedent)) << ','
        << CsvQuote(JoinItems(schema, rule.consequent)) << ','
        << StrFormat("%.6f,%.6f,%u,%u,%u", rule.support(), rule.confidence(),
                     rule.itemset_count, rule.antecedent_count,
                     rule.base_count);
    if (options.with_measures) {
      RuleMeasures m =
          ComputeMeasures(CountsForRule(dataset, subset.tids, rule));
      out << StrFormat(",%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f", m.lift,
                       m.cosine, m.kulczynski, m.all_confidence,
                       m.max_confidence, m.leverage, m.imbalance);
    }
    out << "\n";
  }
}

void RulesToJson(const Dataset& dataset, const RuleSet& rules,
                 const FocalSubset& subset, const ExportOptions& options,
                 std::ostream& out) {
  const Schema& schema = dataset.schema();
  out << "[";
  for (size_t i = 0; i < rules.rules.size(); ++i) {
    const Rule& rule = rules.rules[i];
    if (i > 0) out << ",";
    out << "\n  {\"antecedent\": \""
        << JsonEscape(JoinItems(schema, rule.antecedent))
        << "\", \"consequent\": \""
        << JsonEscape(JoinItems(schema, rule.consequent)) << "\", "
        << StrFormat("\"support\": %.6f, \"confidence\": %.6f, "
                     "\"itemset_count\": %u, \"antecedent_count\": %u, "
                     "\"base_count\": %u",
                     rule.support(), rule.confidence(), rule.itemset_count,
                     rule.antecedent_count, rule.base_count);
    if (options.with_measures) {
      RuleMeasures m =
          ComputeMeasures(CountsForRule(dataset, subset.tids, rule));
      out << StrFormat(", \"lift\": %.6f, \"cosine\": %.6f, "
                       "\"kulczynski\": %.6f, \"all_confidence\": %.6f, "
                       "\"max_confidence\": %.6f, \"leverage\": %.6f, "
                       "\"imbalance\": %.6f",
                       m.lift, m.cosine, m.kulczynski, m.all_confidence,
                       m.max_confidence, m.leverage, m.imbalance);
    }
    out << "}";
  }
  out << "\n]\n";
}

std::string RulesToCsvString(const Dataset& dataset, const RuleSet& rules,
                             const FocalSubset& subset,
                             const ExportOptions& options) {
  std::ostringstream out;
  RulesToCsv(dataset, rules, subset, options, out);
  return out.str();
}

std::string RulesToJsonString(const Dataset& dataset, const RuleSet& rules,
                              const FocalSubset& subset,
                              const ExportOptions& options) {
  std::ostringstream out;
  RulesToJson(dataset, rules, subset, options, out);
  return out.str();
}

}  // namespace colarm
