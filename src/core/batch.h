#ifndef COLARM_CORE_BATCH_H_
#define COLARM_CORE_BATCH_H_

#include <vector>

#include "core/engine.h"

namespace colarm {

struct BatchOptions {
  /// Materialize each distinct focal box once and share it across the
  /// queries selecting it (the dominant shared cost: one relation scan
  /// per box instead of per query).
  bool share_subsets = true;
  /// Serve byte-identical queries from the first execution's result.
  bool reuse_duplicate_results = true;
  /// Pick each query's plan with the cost-based optimizer (otherwise the
  /// forced plan below is used).
  bool use_optimizer = true;
  PlanKind forced_plan = PlanKind::kSSEUV;
  /// Degree of parallelism across queries: 0 = use the engine's pool,
  /// 1 = the exact sequential legacy loop, N > 1 = a dedicated pool of N
  /// for this batch. Results are byte-identical for any value — unique
  /// queries execute concurrently, but every result (rules, stats,
  /// decisions) and the sharing counters match the sequential run, and
  /// results stay in input order.
  unsigned num_threads = 0;
  /// Runs the batch against a caller-owned session cache instead of the
  /// engine's (multi-tenant serving: one engine, one cache per tenant).
  /// Null keeps the engine's cache. Must be built over the engine's index.
  QueryCache* cache_override = nullptr;
  /// Cooperative cancellation for the whole batch (the server uses the
  /// earliest deadline of the batched requests). When it fires, Execute
  /// returns kDeadlineExceeded; callers needing per-request granularity
  /// fall back to single-query execution with per-request tokens.
  const CancelToken* cancel = nullptr;
};

struct BatchResult {
  /// One entry per input query, in input order.
  std::vector<QueryResult> results;
  /// Focal-subset materializations avoided by sharing.
  uint32_t subsets_shared = 0;
  /// Full executions avoided by duplicate-result reuse.
  uint32_t duplicates_reused = 0;
  double total_ms = 0.0;
  /// Session-cache telemetry for the whole batch: hit/miss/eviction
  /// counters as deltas attributable to the batch, bytes/entries as the
  /// resident state after it. All zero when the engine has no cache.
  CacheTelemetry cache;
};

/// Multi-query execution for localized rule mining — the paper's future
/// work item (b). An analyst's exploration session issues many related
/// requests (same region at several thresholds, neighbouring regions,
/// drill-downs); the executor shares work across them while keeping each
/// result identical to standalone execution (tested invariant).
///
/// When the engine has a session cache, the batch participates in it:
/// focal subsets are acquired through the cache sequentially, in first-
/// appearance order, during planning (so cache state transitions are
/// deterministic for any thread count), queries read the memo's pre-batch
/// state during execution, and each query's memoized counts commit after
/// execution in input order. Duplicate-reused queries are served from
/// their representative's result and never touch the cache.
class BatchExecutor {
 public:
  explicit BatchExecutor(const Engine& engine) : engine_(&engine) {}

  Result<BatchResult> Execute(std::span<const LocalizedQuery> queries,
                              const BatchOptions& options = {}) const;

 private:
  /// The legacy single-threaded loop — the exact reference semantics the
  /// parallel path must reproduce byte-for-byte.
  Status SequentialExecute(std::span<const LocalizedQuery> queries,
                           const BatchOptions& options,
                           BatchResult* batch) const;

  const Engine* engine_;
};

}  // namespace colarm

#endif  // COLARM_CORE_BATCH_H_
