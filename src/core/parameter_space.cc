#include "core/parameter_space.h"

#include <algorithm>

#include "common/string_util.h"
#include "mining/local_counter.h"
#include "plans/operators.h"

namespace colarm {

Result<ParameterSpaceView> ParameterSpaceView::Build(
    const MipIndex& index, const LocalizedQuery& base,
    const ParameterSpaceOptions& options) {
  if (options.min_support_floor <= 0.0 || options.min_support_floor > 1.0) {
    return Status::InvalidArgument("min_support_floor must be in (0, 1]");
  }
  LocalizedQuery probe = base;
  probe.minsupp = options.min_support_floor;
  probe.minconf = 1e-9;  // materialize every confidence level
  COLARM_RETURN_IF_ERROR(probe.Validate(index.dataset().schema()));

  ParameterSpaceView view;
  view.floor_ = options.min_support_floor;

  PlanContext ctx(index, probe, options.rulegen);
  view.subset_size_ = ctx.subset.size();
  if (ctx.subset.size() == 0) return view;

  // One S-E-V style pass at the floor: qualified itemsets, then every
  // rule partition with its exact counts (minconf ~ 0 keeps them all).
  CandidateSet cands = OpSupportedSearch(&ctx);
  std::vector<uint32_t> all = cands.contained;
  all.insert(all.end(), cands.overlapped.begin(), cands.overlapped.end());
  std::vector<QualifiedItemset> qualified = OpEliminate(&ctx, all);

  RuleSet rules;
  RuleGenStats stats;
  for (const QualifiedItemset& q : qualified) {
    LocalSubsetCounter counter(index.dataset(), index.mip(q.mip_id).items,
                               ctx.subset.tids);
    GenerateRulesForItemset(counter, probe.minconf, options.rulegen, &rules,
                            &stats);
  }
  view.rules_ = std::move(rules.rules);
  std::sort(view.rules_.begin(), view.rules_.end(),
            [](const Rule& a, const Rule& b) {
              return a.itemset_count > b.itemset_count;
            });
  return view;
}

Result<RuleSet> ParameterSpaceView::RulesAt(double minsupp,
                                            double minconf) const {
  if (minsupp + 1e-12 < floor_) {
    return Status::FailedPrecondition(StrFormat(
        "minsupp %.3f below the view's materialization floor %.3f", minsupp,
        floor_));
  }
  RuleSet out;
  const uint32_t min_count =
      subset_size_ == 0 ? 1 : MinCount(minsupp, subset_size_);
  for (const Rule& rule : rules_) {
    if (rule.itemset_count < min_count) break;  // support-sorted
    if (rule.confidence() + 1e-12 < minconf) continue;
    out.rules.push_back(rule);
  }
  out.Canonicalize();
  return out;
}

Result<uint32_t> ParameterSpaceView::CountAt(double minsupp,
                                             double minconf) const {
  if (minsupp + 1e-12 < floor_) {
    return Status::FailedPrecondition("minsupp below materialization floor");
  }
  const uint32_t min_count =
      subset_size_ == 0 ? 1 : MinCount(minsupp, subset_size_);
  uint32_t count = 0;
  for (const Rule& rule : rules_) {
    if (rule.itemset_count < min_count) break;
    if (rule.confidence() + 1e-12 >= minconf) ++count;
  }
  return count;
}

std::vector<std::vector<uint32_t>> ParameterSpaceView::CountGrid(
    std::span<const double> minsupps,
    std::span<const double> minconfs) const {
  std::vector<std::vector<uint32_t>> grid(
      minsupps.size(), std::vector<uint32_t>(minconfs.size(), 0));
  for (size_t i = 0; i < minsupps.size(); ++i) {
    for (size_t j = 0; j < minconfs.size(); ++j) {
      Result<uint32_t> count = CountAt(minsupps[i], minconfs[j]);
      grid[i][j] = count.ok() ? *count : UINT32_MAX;
    }
  }
  return grid;
}

}  // namespace colarm
