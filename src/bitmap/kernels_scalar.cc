// Portable scalar kernel table: the 64-bit word loops every platform can
// run, and the reference semantics the AVX2/AVX-512 tables must reproduce
// bit-for-bit. Compiled without any ISA flags so the shipped binary's
// baseline stays runnable on the oldest supported x86-64 (and on non-x86,
// where it is the only table).
#include <algorithm>
#include <bit>

#include "bitmap/kernels.h"

namespace colarm {

namespace {

uint64_t ScalarPopcount(const uint64_t* a, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i]));
  }
  return count;
}

uint64_t ScalarAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

uint64_t ScalarAnd3Count(const uint64_t* a, const uint64_t* b,
                         const uint64_t* c, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return count;
}

void ScalarAndInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void ScalarOrInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void ScalarAndNotInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

void ScalarAndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] & b[i];
}

size_t ScalarLowerBound(const Tid* data, size_t n, Tid key) {
  return static_cast<size_t>(std::lower_bound(data, data + n, key) - data);
}

}  // namespace

const BitmapKernels kScalarKernels = {
    ScalarPopcount,   ScalarAndCount,      ScalarAnd3Count, ScalarAndInplace,
    ScalarOrInplace,  ScalarAndNotInplace, ScalarAndInto,   ScalarLowerBound,
};

}  // namespace colarm
