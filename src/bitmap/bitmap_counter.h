#ifndef COLARM_BITMAP_BITMAP_COUNTER_H_
#define COLARM_BITMAP_BITMAP_COUNTER_H_

#include <span>
#include <vector>

#include "bitmap/bitmap.h"
#include "bitmap/vertical_index.h"
#include "mining/itemset.h"

namespace colarm {

/// Local support of one (sorted) itemset within a focal-subset bitmap:
/// popcount(AND of the item bitmaps ∩ DQ), computed word-parallel with no
/// row access. `scratch` (universe-sized) avoids per-call allocation in
/// the ELIMINATE candidate loop; it is clobbered.
uint32_t BitmapLocalCount(const VerticalIndex& vertical, const Bitmap& dq,
                          std::span<const ItemId> itemset, Bitmap* scratch);

/// Word-parallel drop-in for LocalSubsetCounter: local support counts of
/// every subset of a candidate itemset, computed from the vertical index
/// and the focal-subset bitmap instead of a row scan. Counts are exactly
/// LocalSubsetCounter's, and the record-check effort counter follows the
/// same semantics (one "check" per focal record per full pass), so plans
/// report byte-identical statistics on either backend.
///
/// For itemsets up to kMaxMaskItems the counter precomputes all 2^L
/// subset counts — either by a DFS over the subset lattice (one AND +
/// popcount per subset, reusing the parent intersection) or, when 2^L
/// passes would cost more than one row-mask pass, by probing each focal
/// record's mask against the item bitmaps and zeta-transforming, whichever
/// is cheaper. Longer itemsets fall back to one AND-chain per query.
class BitmapSubsetCounter {
 public:
  static constexpr size_t kMaxMaskItems = 20;

  /// `itemset` must be sorted; `dq_tids` is the focal subset's tid list
  /// (spanned, not copied — it must outlive the counter, which every plan
  /// operator guarantees: the FocalSubset lives in the PlanContext).
  BitmapSubsetCounter(const VerticalIndex& vertical, const Bitmap& dq,
                      Itemset itemset, std::span<const Tid> dq_tids);

  /// Local support count of a subset of the constructor itemset. `subset`
  /// must be sorted; unknown items return 0 (LocalSubsetCounter contract).
  uint32_t CountOf(std::span<const ItemId> subset) const;

  uint32_t CountFull() const { return full_count_; }

  const Itemset& itemset() const { return itemset_; }
  uint32_t base_size() const { return static_cast<uint32_t>(dq_tids_.size()); }
  uint64_t record_checks() const { return record_checks_; }

  /// Same contract (and table layout) as LocalSubsetCounter: true iff
  /// subset_table() holds all 2^L subset counts, so either backend's table
  /// feeds the session cache's count memo interchangeably.
  bool has_subset_table() const { return use_mask_; }
  std::span<const uint32_t> subset_table() const { return superset_counts_; }

 private:
  uint32_t MaskOf(std::span<const ItemId> subset) const;

  const VerticalIndex& vertical_;
  const Bitmap& dq_;
  Itemset itemset_;
  std::span<const Tid> dq_tids_;
  bool use_mask_ = false;
  std::vector<uint32_t> superset_counts_;  // [mask] = |records ⊇ mask|
  uint32_t full_count_ = 0;
  mutable uint64_t record_checks_ = 0;
};

}  // namespace colarm

#endif  // COLARM_BITMAP_BITMAP_COUNTER_H_
