// Resolves the runtime kernel dispatch: SimdLevel (common/cpu_features) ->
// kernel table. The per-ISA tables live in their own translation units so
// each can carry its own per-file -m flags; this TU is portable and only
// references the tables the build compiled in (COLARM_HAVE_*_TU come from
// src/CMakeLists.txt alongside the per-file flags).
#include "bitmap/kernels.h"

namespace colarm {

const BitmapKernels* KernelsForLevel(SimdLevel level) {
  if (!SimdLevelSupported(level)) return nullptr;
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarKernels;
#ifdef COLARM_HAVE_AVX2_TU
    case SimdLevel::kAvx2:
      return &kAvx2Kernels;
#endif
#ifdef COLARM_HAVE_AVX512_TU
    case SimdLevel::kAvx512:
      return Avx512HasVpopcntdq() ? &kAvx512VpopcntKernels : &kAvx512Kernels;
#endif
    default:
      // SimdLevelSupported() already excludes levels whose TU is absent;
      // this is unreachable but keeps -Wswitch quiet on non-x86 builds.
      return &kScalarKernels;
  }
}

const BitmapKernels& ActiveKernels() {
  const BitmapKernels* table = KernelsForLevel(ActiveSimdLevel());
  return table != nullptr ? *table : kScalarKernels;
}

}  // namespace colarm
