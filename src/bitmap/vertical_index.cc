#include "bitmap/vertical_index.h"

#include <algorithm>

namespace colarm {

VerticalIndex VerticalIndex::Build(const Dataset& dataset, ThreadPool* pool) {
  VerticalIndex index;
  index.num_records_ = dataset.num_records();
  const Schema& schema = dataset.schema();
  index.items_.resize(schema.num_items());
  ParallelFor(pool, schema.num_attributes(), [&](size_t a) {
    const auto attr = static_cast<AttrId>(a);
    const std::vector<ValueId>& column = dataset.Column(attr);
    const ItemId base = schema.item_base(attr);
    for (ValueId v = 0; v < schema.attribute(attr).domain_size(); ++v) {
      index.items_[base + v] = Bitmap(index.num_records_);
    }
    for (Tid t = 0; t < column.size(); ++t) {
      index.items_[base + column[t]].Set(t);
    }
  });
  return index;
}

VerticalIndex VerticalIndex::FromBitmaps(std::vector<Bitmap> bitmaps,
                                         uint32_t num_records) {
  VerticalIndex index;
  index.num_records_ = num_records;
  index.items_ = std::move(bitmaps);
  return index;
}

Bitmap VerticalIndex::MaterializeDq(const Schema& schema, const Rect& box,
                                    ThreadPool* pool) const {
  Bitmap dq(num_records_);

  // Attributes with a real restriction, tightest interval first so the
  // running AND sparsifies as early as possible.
  std::vector<AttrId> constrained;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (box.lo(a) != 0 || box.hi(a) != schema.attribute(a).domain_size() - 1) {
      constrained.push_back(a);
    }
  }
  if (constrained.empty()) {
    dq.Fill();
    return dq;
  }
  std::sort(constrained.begin(), constrained.end(),
            [&](AttrId a, AttrId b) { return box.Extent(a) < box.Extent(b); });

  // Word-range sharding: every word of DQ depends only on the same word of
  // the item bitmaps, so [0, num_words) splits freely across the pool.
  const size_t words = dq.num_words();
  const size_t chunks =
      IsParallel(pool) && words >= 64
          ? std::min(words, static_cast<size_t>(pool->parallelism()) * 4)
          : 1;
  ParallelChunks(pool, words, chunks, [&](size_t, size_t begin, size_t end) {
    const auto word_begin = static_cast<uint32_t>(begin);
    const auto word_end = static_cast<uint32_t>(end);
    Bitmap range_or(num_records_);
    bool first = true;
    for (AttrId a : constrained) {
      const ItemId base = schema.item_base(a);
      for (uint64_t* w = range_or.mutable_words() + word_begin;
           w != range_or.mutable_words() + word_end; ++w) {
        *w = 0;
      }
      for (ValueId v = box.lo(a); v <= box.hi(a); ++v) {
        range_or.OrWithRange(items_[base + v], word_begin, word_end);
      }
      if (first) {
        for (uint32_t w = word_begin; w < word_end; ++w) {
          dq.mutable_words()[w] = range_or.words()[w];
        }
        first = false;
      } else {
        dq.AndWithRange(range_or, word_begin, word_end);
      }
    }
  });
  return dq;
}

void VerticalIndex::NarrowDq(const Schema& schema, const Rect& box,
                             const Rect& outer, Bitmap* dq,
                             ThreadPool* pool) const {
  // Only attributes whose interval narrowed relative to the outer box need
  // re-testing; tightest interval first, as in MaterializeDq.
  std::vector<AttrId> narrowed;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (box.lo(a) != outer.lo(a) || box.hi(a) != outer.hi(a)) {
      narrowed.push_back(a);
    }
  }
  if (narrowed.empty()) return;
  std::sort(narrowed.begin(), narrowed.end(),
            [&](AttrId a, AttrId b) { return box.Extent(a) < box.Extent(b); });

  const size_t words = dq->num_words();
  const size_t chunks =
      IsParallel(pool) && words >= 64
          ? std::min(words, static_cast<size_t>(pool->parallelism()) * 4)
          : 1;
  ParallelChunks(pool, words, chunks, [&](size_t, size_t begin, size_t end) {
    const auto word_begin = static_cast<uint32_t>(begin);
    const auto word_end = static_cast<uint32_t>(end);
    Bitmap range_or(num_records_);
    for (AttrId a : narrowed) {
      const ItemId base = schema.item_base(a);
      for (uint64_t* w = range_or.mutable_words() + word_begin;
           w != range_or.mutable_words() + word_end; ++w) {
        *w = 0;
      }
      for (ValueId v = box.lo(a); v <= box.hi(a); ++v) {
        range_or.OrWithRange(items_[base + v], word_begin, word_end);
      }
      dq->AndWithRange(range_or, word_begin, word_end);
    }
  });
}

}  // namespace colarm
