#include "bitmap/bitmap.h"

#include "bitmap/kernels.h"

namespace colarm {

// Every word kernel routes through the runtime-dispatched table
// (bitmap/kernels.h): scalar, AVX2, or AVX-512 by host capability and the
// COLARM_SIMD override. Range methods hand the kernel a raw word window,
// so sharding semantics — and therefore results at any thread count — are
// identical at every ISA level.

Bitmap Bitmap::FromTids(std::span<const Tid> tids, uint32_t size) {
  Bitmap bitmap(size);
  for (Tid t : tids) bitmap.Set(t);
  return bitmap;
}

void Bitmap::Fill() {
  if (words_.empty()) return;
  for (uint64_t& w : words_) w = ~0ull;
  const uint32_t slack = num_words() * kBitsPerWord - size_;
  if (slack > 0) words_.back() >>= slack;
}

uint64_t Bitmap::Count() const { return CountRange(0, num_words()); }

uint64_t Bitmap::CountRange(uint32_t word_begin, uint32_t word_end) const {
  return ActiveKernels().popcount(words_.data() + word_begin,
                                  word_end - word_begin);
}

void Bitmap::AndWith(const Bitmap& other) {
  AndWithRange(other, 0, num_words());
}

void Bitmap::AndWithRange(const Bitmap& other, uint32_t word_begin,
                          uint32_t word_end) {
  ActiveKernels().and_inplace(words_.data() + word_begin,
                              other.words_.data() + word_begin,
                              word_end - word_begin);
}

void Bitmap::AndNotWith(const Bitmap& other) {
  ActiveKernels().andnot_inplace(words_.data(), other.words_.data(),
                                 num_words());
}

void Bitmap::OrWith(const Bitmap& other) { OrWithRange(other, 0, num_words()); }

void Bitmap::OrWithRange(const Bitmap& other, uint32_t word_begin,
                         uint32_t word_end) {
  ActiveKernels().or_inplace(words_.data() + word_begin,
                             other.words_.data() + word_begin,
                             word_end - word_begin);
}

void Bitmap::AndInto(const Bitmap& a, const Bitmap& b, Bitmap* out) {
  ActiveKernels().and_into(a.words_.data(), b.words_.data(),
                           out->words_.data(), a.num_words());
}

uint64_t Bitmap::AndCount(const Bitmap& a, const Bitmap& b) {
  return AndCountRange(a, b, 0, a.num_words());
}

uint64_t Bitmap::AndCountRange(const Bitmap& a, const Bitmap& b,
                               uint32_t word_begin, uint32_t word_end) {
  return ActiveKernels().and_count(a.words_.data() + word_begin,
                                   b.words_.data() + word_begin,
                                   word_end - word_begin);
}

uint64_t Bitmap::And3Count(const Bitmap& a, const Bitmap& b, const Bitmap& c) {
  return ActiveKernels().and3_count(a.words_.data(), b.words_.data(),
                                    c.words_.data(), a.num_words());
}

uint64_t Bitmap::SumOfBits() const {
  uint64_t sum = 0;
  for (uint32_t w = 0; w < num_words(); ++w) {
    uint64_t word = words_[w];
    const uint64_t base = static_cast<uint64_t>(w) * kBitsPerWord;
    sum += base * static_cast<uint64_t>(std::popcount(word));
    while (word != 0) {
      sum += static_cast<uint64_t>(std::countr_zero(word));
      word &= word - 1;
    }
  }
  return sum;
}

void Bitmap::AppendTids(std::vector<Tid>* out) const {
  for (uint32_t w = 0; w < num_words(); ++w) {
    uint64_t word = words_[w];
    const Tid base = static_cast<Tid>(w) * kBitsPerWord;
    while (word != 0) {
      out->push_back(base + static_cast<Tid>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

std::vector<Tid> Bitmap::ToTids() const {
  std::vector<Tid> tids;
  tids.reserve(Count());
  AppendTids(&tids);
  return tids;
}

}  // namespace colarm
