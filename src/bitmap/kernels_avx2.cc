// AVX2 kernel table: 256-bit (4-word) vectors, unaligned loads so any
// word-range shard boundary is legal, scalar tails for the last <4 words.
// Counting kernels run a Harley-Seal carry-save adder tree that folds 16
// vectors into one in-register popcount round (Muła/Kurz/Lemire), ~4x
// fewer byte-shuffle popcounts than the naive per-vector form.
//
// This translation unit alone is compiled with -mavx2 (see
// src/CMakeLists.txt); nothing here runs unless the runtime dispatch
// (common/cpu_features) proved the host executes AVX2.
#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "bitmap/kernels.h"

namespace colarm {

namespace {

// 4 per-64-bit-lane popcounts of v via the nibble-lookup PSHUFB trick.
inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

// Carry-save adder: (h, l) = full-add of one bit-plane across a, b, c.
inline void CSA(__m256i* h, __m256i* l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *l = _mm256_xor_si256(u, c);
}

inline uint64_t HorizontalSum(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

// Harley-Seal popcount over n_vec vectors produced by load(i). The CSA
// tree keeps running bit-planes (ones/twos/fours/eights) and only
// materializes a popcount every 16 vectors; leftover planes are weighted
// back in at the end, and a plain per-vector loop covers n_vec % 16.
template <typename Load>
inline uint64_t HarleySealCount(size_t n_vec, Load load) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
  size_t i = 0;
  for (; i + 16 <= n_vec; i += 16) {
    CSA(&twos_a, &ones, ones, load(i + 0), load(i + 1));
    CSA(&twos_b, &ones, ones, load(i + 2), load(i + 3));
    CSA(&fours_a, &twos, twos, twos_a, twos_b);
    CSA(&twos_a, &ones, ones, load(i + 4), load(i + 5));
    CSA(&twos_b, &ones, ones, load(i + 6), load(i + 7));
    CSA(&fours_b, &twos, twos, twos_a, twos_b);
    CSA(&eights_a, &fours, fours, fours_a, fours_b);
    CSA(&twos_a, &ones, ones, load(i + 8), load(i + 9));
    CSA(&twos_b, &ones, ones, load(i + 10), load(i + 11));
    CSA(&fours_a, &twos, twos, twos_a, twos_b);
    CSA(&twos_a, &ones, ones, load(i + 12), load(i + 13));
    CSA(&twos_b, &ones, ones, load(i + 14), load(i + 15));
    CSA(&fours_b, &twos, twos, twos_a, twos_b);
    CSA(&eights_b, &fours, fours, fours_a, fours_b);
    CSA(&sixteens, &eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, Popcount256(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total =
      _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(eights), 3));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(twos), 1));
  total = _mm256_add_epi64(total, Popcount256(ones));
  for (; i < n_vec; ++i) {
    total = _mm256_add_epi64(total, Popcount256(load(i)));
  }
  return HorizontalSum(total);
}

inline __m256i LoadVec(const uint64_t* p, size_t i) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4 * i));
}

uint64_t Avx2Popcount(const uint64_t* a, size_t n) {
  const size_t n_vec = n / 4;
  uint64_t count =
      HarleySealCount(n_vec, [&](size_t i) { return LoadVec(a, i); });
  for (size_t i = n_vec * 4; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i]));
  }
  return count;
}

uint64_t Avx2AndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  const size_t n_vec = n / 4;
  uint64_t count = HarleySealCount(n_vec, [&](size_t i) {
    return _mm256_and_si256(LoadVec(a, i), LoadVec(b, i));
  });
  for (size_t i = n_vec * 4; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

uint64_t Avx2And3Count(const uint64_t* a, const uint64_t* b,
                       const uint64_t* c, size_t n) {
  const size_t n_vec = n / 4;
  uint64_t count = HarleySealCount(n_vec, [&](size_t i) {
    return _mm256_and_si256(_mm256_and_si256(LoadVec(a, i), LoadVec(b, i)),
                            LoadVec(c, i));
  });
  for (size_t i = n_vec * 4; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return count;
}

void Avx2AndInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_and_si256(LoadVec(dst, i / 4), LoadVec(src, i / 4)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void Avx2OrInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(LoadVec(dst, i / 4), LoadVec(src, i / 4)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void Avx2AndNotInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // andnot computes ~first & second, so src is the first operand.
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_andnot_si256(LoadVec(src, i / 4), LoadVec(dst, i / 4)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

void Avx2AndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                 size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_and_si256(LoadVec(a, i / 4), LoadVec(b, i / 4)));
  }
  for (; i < n; ++i) out[i] = a[i] & b[i];
}

size_t Avx2LowerBound(const Tid* data, size_t n, Tid key) {
  // Binary steps to a small window, then an 8-lane compare scan. Tids are
  // unsigned; biasing by INT32_MIN turns the signed compare unsigned.
  size_t lo = 0;
  size_t hi = n;
  while (hi - lo > 64) {
    const size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m256i bias = _mm256_set1_epi32(INT32_MIN);
  const __m256i keyv =
      _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(key)), bias);
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    v = _mm256_add_epi32(v, bias);
    const __m256i lt = _mm256_cmpgt_epi32(keyv, v);  // data[i] < key
    const auto mask = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(lt)));
    // Sorted input makes the mask a prefix of ones; the first zero bit is
    // the first element >= key.
    if (mask != 0xffu) return i + std::countr_one(mask);
  }
  for (; i < hi; ++i) {
    if (data[i] >= key) return i;
  }
  return hi;
}

}  // namespace

const BitmapKernels kAvx2Kernels = {
    Avx2Popcount,  Avx2AndCount,      Avx2And3Count, Avx2AndInplace,
    Avx2OrInplace, Avx2AndNotInplace, Avx2AndInto,   Avx2LowerBound,
};

}  // namespace colarm
