#ifndef COLARM_BITMAP_KERNELS_H_
#define COLARM_BITMAP_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"
#include "data/types.h"

namespace colarm {

/// The word-level kernel vocabulary of the vertical bitmap backend, as a
/// function-pointer table so one binary carries scalar, AVX2, and AVX-512
/// implementations side by side and picks at runtime (common/cpu_features).
///
/// Every kernel operates on a raw window of 64-bit words — `Bitmap`'s
/// range methods pass `words() + word_begin` and `word_end - word_begin` —
/// so word-range sharding across the thread pool is byte-identical at any
/// ISA level: the window boundaries, not the vector width, define the
/// work split, and integer popcount sums are associative. Implementations
/// handle any window length (vector body + scalar tail); none may read or
/// write outside [p, p + n).
struct BitmapKernels {
  /// sum(popcount(a[i]))
  uint64_t (*popcount)(const uint64_t* a, size_t n);
  /// sum(popcount(a[i] & b[i]))
  uint64_t (*and_count)(const uint64_t* a, const uint64_t* b, size_t n);
  /// sum(popcount(a[i] & b[i] & c[i]))
  uint64_t (*and3_count)(const uint64_t* a, const uint64_t* b,
                         const uint64_t* c, size_t n);
  /// dst[i] &= src[i]
  void (*and_inplace)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] |= src[i]
  void (*or_inplace)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] &= ~src[i]
  void (*andnot_inplace)(uint64_t* dst, const uint64_t* src, size_t n);
  /// out[i] = a[i] & b[i]
  void (*and_into)(const uint64_t* a, const uint64_t* b, uint64_t* out,
                   size_t n);
  /// First index i in [0, n) with data[i] >= key, n if none; `data` sorted
  /// ascending. The probe inside TidsetIntersectSize's galloping path:
  /// binary steps narrow the window, a vector compare scan finishes it.
  size_t (*lower_bound)(const Tid* data, size_t n, Tid key);
};

/// Portable reference table; always available, byte-exact ground truth for
/// the vectorized tables in tests.
extern const BitmapKernels kScalarKernels;

/// Per-ISA tables, defined only when src/CMakeLists.txt compiled the
/// matching translation unit (x86 target + compiler flag probe). Never
/// reference these directly — KernelsForLevel() is the only odr-user and
/// guards on the build's COLARM_HAVE_*_TU definitions.
extern const BitmapKernels kAvx2Kernels;
extern const BitmapKernels kAvx512Kernels;
extern const BitmapKernels kAvx512VpopcntKernels;

/// Table for an explicit level, or nullptr when that level is not
/// executable here (host CPUID or non-x86 build). kAvx512 resolves the
/// VPOPCNTDQ sub-feature internally: the returned table uses vpopcntq when
/// the host has it and an AVX2-halves popcount otherwise.
const BitmapKernels* KernelsForLevel(SimdLevel level);

/// The table matching ActiveSimdLevel() right now. Re-read on every call
/// site batch (a pointer load), so SetActiveSimdLevel takes effect without
/// re-resolving anything.
const BitmapKernels& ActiveKernels();

}  // namespace colarm

#endif  // COLARM_BITMAP_KERNELS_H_
