#ifndef COLARM_BITMAP_HYBRID_TIDSET_H_
#define COLARM_BITMAP_HYBRID_TIDSET_H_

#include <span>
#include <utility>

#include "bitmap/bitmap.h"
#include "mining/tidset.h"

namespace colarm {

/// A tidset that stores itself as a dense Bitmap when it covers at least
/// one record per word (size x 64 >= universe) and as a sorted tid list
/// otherwise. CHARM's intersections then run word-parallel near the root
/// of the IT-tree, where tidsets are fat, and fall back to merge/probe as
/// the search deepens and tidsets sparsify — dense∧dense is an AND,
/// dense∧sparse a probe of the list against the bitmap, sparse∧sparse the
/// usual sorted merge. Representation never affects the value: size, tid
/// sum, and the materialized tid list are identical either way, which is
/// what keeps the hybrid CHARM's emission order byte-identical to the
/// list-based miner's.
class HybridTidset {
 public:
  HybridTidset() = default;

  /// Adopts a sorted tid list over [0, universe), picking the
  /// representation by density.
  static HybridTidset FromTids(Tidset tids, uint32_t universe);

  size_t size() const { return dense_ ? count_ : tids_.size(); }
  bool dense() const { return dense_; }
  uint32_t universe() const { return universe_; }

  /// a ∩ b (equal universes). Only dense∧dense can produce a dense result;
  /// a sparse operand bounds the output below the density threshold.
  static HybridTidset Intersect(const HybridTidset& a, const HybridTidset& b);

  /// Sum of member tids (CHARM's bucketing hash).
  uint64_t Sum() const;

  /// Materializes the sorted tid list.
  Tidset ToTids() const;

  // Tidset (std::vector) compatibility for the templated CHARM search.
  void clear();
  void shrink_to_fit() {}

 private:
  uint32_t universe_ = 0;
  bool dense_ = false;
  uint32_t count_ = 0;  // cardinality when dense
  Bitmap bits_;         // dense representation
  Tidset tids_;         // sparse representation
};

/// Overloads letting the templated CHARM search treat HybridTidset and
/// Tidset uniformly.
inline HybridTidset TidsetIntersect(const HybridTidset& a,
                                    const HybridTidset& b) {
  return HybridTidset::Intersect(a, b);
}
inline uint64_t TidsetSum(const HybridTidset& tids) { return tids.Sum(); }

}  // namespace colarm

#endif  // COLARM_BITMAP_HYBRID_TIDSET_H_
