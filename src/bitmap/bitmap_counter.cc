#include "bitmap/bitmap_counter.h"

#include <algorithm>
#include <utility>

namespace colarm {

uint32_t BitmapLocalCount(const VerticalIndex& vertical, const Bitmap& dq,
                          std::span<const ItemId> itemset, Bitmap* scratch) {
  if (itemset.empty()) return static_cast<uint32_t>(dq.Count());
  if (itemset.size() == 1) {
    return static_cast<uint32_t>(Bitmap::AndCount(vertical.item(itemset[0]), dq));
  }
  if (itemset.size() == 2) {
    return static_cast<uint32_t>(Bitmap::And3Count(
        vertical.item(itemset[0]), vertical.item(itemset[1]), dq));
  }
  Bitmap::AndInto(vertical.item(itemset[0]), vertical.item(itemset[1]),
                  scratch);
  for (size_t i = 2; i < itemset.size(); ++i) {
    scratch->AndWith(vertical.item(itemset[i]));
  }
  return static_cast<uint32_t>(Bitmap::AndCount(*scratch, dq));
}

BitmapSubsetCounter::BitmapSubsetCounter(const VerticalIndex& vertical,
                                         const Bitmap& dq, Itemset itemset,
                                         std::span<const Tid> dq_tids)
    : vertical_(vertical),
      dq_(dq),
      itemset_(std::move(itemset)),
      dq_tids_(dq_tids) {
  const size_t len = itemset_.size();
  use_mask_ = len <= kMaxMaskItems;
  if (use_mask_) {
    superset_counts_.assign(size_t{1} << len, 0);
    // Two word-exact routes to the same table. The lattice DFS does one
    // AND + popcount per subset; the row probe touches each focal record
    // `len` times then zeta-transforms. Pick whichever moves fewer words.
    const uint64_t dfs_cost =
        (uint64_t{1} << len) * static_cast<uint64_t>(dq_.num_words());
    const uint64_t probe_cost =
        static_cast<uint64_t>(dq_tids_.size()) * static_cast<uint64_t>(len);
    if (len > 0 && dfs_cost > probe_cost) {
      // Row probe: per-record sub-pattern mask via bit tests, then the
      // same superset-sum transform the scalar counter uses.
      for (Tid t : dq_tids_) {
        uint32_t mask = 0;
        for (size_t i = 0; i < len; ++i) {
          if (vertical_.item(itemset_[i]).Test(t)) mask |= (1u << i);
        }
        ++superset_counts_[mask];
      }
      for (size_t bit = 0; bit < len; ++bit) {
        const uint32_t bitmask = 1u << bit;
        for (uint32_t m = 0; m < superset_counts_.size(); ++m) {
          if ((m & bitmask) == 0) {
            superset_counts_[m] += superset_counts_[m | bitmask];
          }
        }
      }
    } else {
      // Lattice DFS: superset_counts_[m] is directly
      // popcount(AND of the mask's item bitmaps ∩ DQ) — no transform
      // needed. Each node reuses its parent's intersection, so the whole
      // table costs one AND per subset; scratch[d] is the depth-d
      // running intersection.
      superset_counts_[0] = static_cast<uint32_t>(dq_.Count());
      std::vector<Bitmap> scratch(len, Bitmap(vertical_.num_records()));
      auto dfs = [&](auto&& self, const Bitmap& parent, uint32_t mask,
                     size_t first_bit, size_t depth) -> void {
        for (size_t bit = first_bit; bit < len; ++bit) {
          Bitmap& cur = scratch[depth];
          Bitmap::AndInto(parent, vertical_.item(itemset_[bit]), &cur);
          const uint32_t child = mask | (1u << bit);
          superset_counts_[child] = static_cast<uint32_t>(cur.Count());
          self(self, cur, child, bit + 1, depth + 1);
        }
      };
      dfs(dfs, dq_, 0, 0, 0);
    }
    record_checks_ += dq_tids_.size();
    full_count_ = superset_counts_.empty()
                      ? 0
                      : superset_counts_[superset_counts_.size() - 1];
  } else {
    Bitmap scratch(vertical_.num_records());
    full_count_ = BitmapLocalCount(vertical_, dq_, itemset_, &scratch);
    record_checks_ += dq_tids_.size();
  }
}

uint32_t BitmapSubsetCounter::MaskOf(std::span<const ItemId> subset) const {
  uint32_t mask = 0;
  size_t pos = 0;
  for (ItemId item : subset) {
    while (pos < itemset_.size() && itemset_[pos] < item) ++pos;
    if (pos == itemset_.size() || itemset_[pos] != item) {
      return UINT32_MAX;  // item not part of the base itemset
    }
    mask |= (1u << pos);
    ++pos;
  }
  return mask;
}

uint32_t BitmapSubsetCounter::CountOf(std::span<const ItemId> subset) const {
  if (use_mask_) {
    uint32_t mask = MaskOf(subset);
    if (mask == UINT32_MAX) return 0;
    return superset_counts_[mask];
  }
  Bitmap scratch(vertical_.num_records());
  const uint32_t count = BitmapLocalCount(vertical_, dq_, subset, &scratch);
  record_checks_ += dq_tids_.size();
  return count;
}

}  // namespace colarm
