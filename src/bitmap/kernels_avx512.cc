// AVX-512 kernel tables: 512-bit (8-word) vectors, unaligned loads, scalar
// tails. Two tables live here and the dispatch picks by CPUID sub-feature:
//
//   kAvx512VpopcntKernels  counting via vpopcntq (AVX512VPOPCNTDQ) — one
//                          instruction per 8 words; the functions carry a
//                          target attribute so only this table's entries
//                          ever contain vpopcntq encodings.
//   kAvx512Kernels         F-only fallback: 512-bit loads/ANDs, popcount
//                          by splitting each vector into 256-bit halves
//                          through the AVX2 nibble-lookup (AVX-512F implies
//                          AVX2, so this TU may use both).
//
// This translation unit alone is compiled with -mavx512f (see
// src/CMakeLists.txt); nothing here runs unless the runtime dispatch
// (common/cpu_features) proved the host executes AVX-512F.
#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "bitmap/kernels.h"

namespace colarm {

namespace {

// ---- shared 512-bit boolean kernels (AVX-512F only) ----

inline __m512i Load512(const uint64_t* p, size_t i) {
  return _mm512_loadu_si512(p + 8 * i);
}

void Avx512AndInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(
        dst + i, _mm512_and_si512(Load512(dst, i / 8), Load512(src, i / 8)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void Avx512OrInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(
        dst + i, _mm512_or_si512(Load512(dst, i / 8), Load512(src, i / 8)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void Avx512AndNotInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // andnot computes ~first & second, so src is the first operand.
    _mm512_storeu_si512(dst + i, _mm512_andnot_si512(Load512(src, i / 8),
                                                     Load512(dst, i / 8)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

void Avx512AndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                   size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(
        out + i, _mm512_and_si512(Load512(a, i / 8), Load512(b, i / 8)));
  }
  for (; i < n; ++i) out[i] = a[i] & b[i];
}

size_t Avx512LowerBound(const Tid* data, size_t n, Tid key) {
  // Binary steps to a small window, then a 16-lane unsigned compare scan.
  size_t lo = 0;
  size_t hi = n;
  while (hi - lo > 128) {
    const size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m512i keyv = _mm512_set1_epi32(static_cast<int>(key));
  size_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    const __m512i v = _mm512_loadu_si512(data + i);
    const __mmask16 lt = _mm512_cmplt_epu32_mask(v, keyv);
    // Sorted input makes the mask a prefix of ones; the first zero bit is
    // the first element >= key.
    if (lt != 0xffffu) return i + std::countr_one(static_cast<uint32_t>(lt));
  }
  for (; i < hi; ++i) {
    if (data[i] >= key) return i;
  }
  return hi;
}

// ---- F-only counting: AVX2 nibble-lookup popcount on 256-bit halves ----

inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline __m256i Popcount512To256(__m512i v) {
  return _mm256_add_epi64(Popcount256(_mm512_castsi512_si256(v)),
                          Popcount256(_mm512_extracti64x4_epi64(v, 1)));
}

inline uint64_t HorizontalSum256(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

uint64_t Avx512Popcount(const uint64_t* a, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_epi64(acc, Popcount512To256(Load512(a, i / 8)));
  }
  uint64_t count = HorizontalSum256(acc);
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i]));
  }
  return count;
}

uint64_t Avx512AndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_epi64(
        acc, Popcount512To256(
                 _mm512_and_si512(Load512(a, i / 8), Load512(b, i / 8))));
  }
  uint64_t count = HorizontalSum256(acc);
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

uint64_t Avx512And3Count(const uint64_t* a, const uint64_t* b,
                         const uint64_t* c, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_epi64(
        acc,
        Popcount512To256(_mm512_and_si512(
            _mm512_and_si512(Load512(a, i / 8), Load512(b, i / 8)),
            Load512(c, i / 8))));
  }
  uint64_t count = HorizontalSum256(acc);
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return count;
}

// ---- VPOPCNTDQ counting: vpopcntq per vector ----
//
// The target attribute (rather than a TU-wide -mavx512vpopcntdq) confines
// vpopcntq encodings to these three functions, so the F-only table above
// stays executable on AVX-512F hosts without the extension — the compiler
// must not auto-vectorize the fallback's scalar tails into vpopcntq.

#define COLARM_VPOPCNT_TARGET \
  __attribute__((target("avx512f,avx512vpopcntdq")))

COLARM_VPOPCNT_TARGET
uint64_t VpopcntPopcount(const uint64_t* a, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(Load512(a, i / 8)));
  }
  uint64_t count = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i]));
  }
  return count;
}

COLARM_VPOPCNT_TARGET
uint64_t VpopcntAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(
                 _mm512_and_si512(Load512(a, i / 8), Load512(b, i / 8))));
  }
  uint64_t count = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

COLARM_VPOPCNT_TARGET
uint64_t VpopcntAnd3Count(const uint64_t* a, const uint64_t* b,
                          const uint64_t* c, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_and_si512(
                 _mm512_and_si512(Load512(a, i / 8), Load512(b, i / 8)),
                 Load512(c, i / 8))));
  }
  uint64_t count = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i] & c[i]));
  }
  return count;
}

#undef COLARM_VPOPCNT_TARGET

}  // namespace

const BitmapKernels kAvx512Kernels = {
    Avx512Popcount,  Avx512AndCount,      Avx512And3Count, Avx512AndInplace,
    Avx512OrInplace, Avx512AndNotInplace, Avx512AndInto,   Avx512LowerBound,
};

const BitmapKernels kAvx512VpopcntKernels = {
    VpopcntPopcount, VpopcntAndCount,     VpopcntAnd3Count, Avx512AndInplace,
    Avx512OrInplace, Avx512AndNotInplace, Avx512AndInto,    Avx512LowerBound,
};

}  // namespace colarm
