#ifndef COLARM_BITMAP_BITMAP_H_
#define COLARM_BITMAP_BITMAP_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "data/types.h"

namespace colarm {

/// A dense, word-aligned bitmap over a fixed record universe [0, size):
/// bit t is set iff record t is a member. The word-parallel substrate of
/// the vertical execution backend — one AND+popcount over 64 records per
/// instruction instead of 64 record-level probes.
///
/// All binary kernels require equal universes. The range variants operate
/// on an explicit [word_begin, word_end) window so callers (DQ
/// materialization, big counts) can shard one kernel across the thread
/// pool by word range; words are independent, so any sharding recombines
/// to the same result.
class Bitmap {
 public:
  static constexpr uint32_t kBitsPerWord = 64;

  Bitmap() = default;

  /// All-zero bitmap over `size` records.
  explicit Bitmap(uint32_t size)
      : size_(size), words_((size + kBitsPerWord - 1) / kBitsPerWord, 0) {}

  /// Bitmap of the given sorted tid list over a universe of `size`.
  static Bitmap FromTids(std::span<const Tid> tids, uint32_t size);

  uint32_t size() const { return size_; }
  uint32_t num_words() const { return static_cast<uint32_t>(words_.size()); }
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  void Set(Tid t) { words_[t / kBitsPerWord] |= 1ull << (t % kBitsPerWord); }
  bool Test(Tid t) const {
    return (words_[t / kBitsPerWord] >> (t % kBitsPerWord)) & 1u;
  }

  /// Sets every bit of the universe (trailing slack bits stay zero, an
  /// invariant every kernel below preserves).
  void Fill();

  /// Number of set bits (hardware popcount).
  uint64_t Count() const;
  uint64_t CountRange(uint32_t word_begin, uint32_t word_end) const;

  /// this &= other.
  void AndWith(const Bitmap& other);
  void AndWithRange(const Bitmap& other, uint32_t word_begin,
                    uint32_t word_end);
  /// this &= ~other.
  void AndNotWith(const Bitmap& other);
  /// this |= other.
  void OrWith(const Bitmap& other);
  void OrWithRange(const Bitmap& other, uint32_t word_begin,
                   uint32_t word_end);

  /// out = a & b without touching a or b (out must share the universe).
  static void AndInto(const Bitmap& a, const Bitmap& b, Bitmap* out);

  /// popcount(a & b) without materializing the intersection.
  static uint64_t AndCount(const Bitmap& a, const Bitmap& b);
  static uint64_t AndCountRange(const Bitmap& a, const Bitmap& b,
                                uint32_t word_begin, uint32_t word_end);

  /// popcount(a & b & c) — the fused kernel ELIMINATE's incremental
  /// candidate loop uses to skip one materialization.
  static uint64_t And3Count(const Bitmap& a, const Bitmap& b,
                            const Bitmap& c);

  /// Sum of the set-bit positions (the tidset hash CHARM buckets by).
  uint64_t SumOfBits() const;

  /// Appends the set bits, in increasing order, as tids.
  void AppendTids(std::vector<Tid>* out) const;
  std::vector<Tid> ToTids() const;

  bool operator==(const Bitmap& other) const = default;

 private:
  uint32_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace colarm

#endif  // COLARM_BITMAP_BITMAP_H_
