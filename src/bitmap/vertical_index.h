#ifndef COLARM_BITMAP_VERTICAL_INDEX_H_
#define COLARM_BITMAP_VERTICAL_INDEX_H_

#include <vector>

#include "bitmap/bitmap.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "rtree/rect.h"

namespace colarm {

/// The vertical bitmap representation of a dataset: one dense Bitmap per
/// (attribute, value) item, bit t set iff record t carries the item. This
/// is what the kBitmap execution backend runs on — DQ materialization is
/// an AND over per-attribute range-ORs, and every record-level support
/// count becomes popcount(item-AND ∩ DQ) instead of a row scan.
///
/// Built once per MipIndex (parallel over attributes on the engine pool)
/// and persisted in the index cache (format v3). Memory is
/// num_items x num_records bits — the relation itself re-encoded one-hot.
class VerticalIndex {
 public:
  VerticalIndex() = default;

  /// One pass per attribute column; attributes build concurrently on
  /// `pool`. The result is identical for any pool (bitmaps are
  /// per-attribute-independent).
  static VerticalIndex Build(const Dataset& dataset, ThreadPool* pool);

  /// Assembles from already-validated per-item bitmaps (the index cache
  /// loader). `bitmaps[i]` must be item i's bitmap over `num_records`.
  static VerticalIndex FromBitmaps(std::vector<Bitmap> bitmaps,
                                   uint32_t num_records);

  bool empty() const { return items_.empty(); }
  uint32_t num_records() const { return num_records_; }
  uint32_t num_items() const { return static_cast<uint32_t>(items_.size()); }
  const Bitmap& item(ItemId item) const { return items_[item]; }

  /// Materializes the focal-subset bitmap: for every attribute the box
  /// constrains (interval narrower than the domain), OR the value bitmaps
  /// of [lo, hi], then AND the per-attribute results. Unconstrained boxes
  /// yield the full-universe bitmap. Word ranges shard across `pool`.
  Bitmap MaterializeDq(const Schema& schema, const Rect& box,
                       ThreadPool* pool) const;

  /// Incremental form of MaterializeDq for the session cache's containment
  /// tier: `dq` already holds the subset of `outer` (a box containing
  /// `box`); AND in the range-ORs of only the attributes whose interval
  /// actually narrowed. Attributes with identical intervals are already
  /// reflected in `dq` and are skipped. Word-range sharded like
  /// MaterializeDq; the result equals MaterializeDq(schema, box, ...) ∩ dq,
  /// which by containment equals the full materialization of `box` within
  /// the same universe.
  void NarrowDq(const Schema& schema, const Rect& box, const Rect& outer,
                Bitmap* dq, ThreadPool* pool) const;

 private:
  uint32_t num_records_ = 0;
  std::vector<Bitmap> items_;
};

}  // namespace colarm

#endif  // COLARM_BITMAP_VERTICAL_INDEX_H_
