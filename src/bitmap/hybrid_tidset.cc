#include "bitmap/hybrid_tidset.h"

namespace colarm {

namespace {

bool DenseEnough(size_t count, uint32_t universe) {
  return static_cast<uint64_t>(count) * Bitmap::kBitsPerWord >=
         static_cast<uint64_t>(universe);
}

}  // namespace

HybridTidset HybridTidset::FromTids(Tidset tids, uint32_t universe) {
  HybridTidset out;
  out.universe_ = universe;
  if (DenseEnough(tids.size(), universe)) {
    out.dense_ = true;
    out.count_ = static_cast<uint32_t>(tids.size());
    out.bits_ = Bitmap::FromTids(tids, universe);
  } else {
    out.tids_ = std::move(tids);
  }
  return out;
}

HybridTidset HybridTidset::Intersect(const HybridTidset& a,
                                     const HybridTidset& b) {
  HybridTidset out;
  out.universe_ = a.universe_;
  if (a.dense_ && b.dense_) {
    Bitmap result(a.universe_);
    Bitmap::AndInto(a.bits_, b.bits_, &result);
    const auto count = static_cast<uint32_t>(result.Count());
    if (DenseEnough(count, a.universe_)) {
      out.dense_ = true;
      out.count_ = count;
      out.bits_ = std::move(result);
    } else {
      out.tids_ = result.ToTids();
    }
  } else if (a.dense_ || b.dense_) {
    const Bitmap& bits = a.dense_ ? a.bits_ : b.bits_;
    const Tidset& tids = a.dense_ ? b.tids_ : a.tids_;
    out.tids_.reserve(tids.size());
    for (Tid t : tids) {
      if (bits.Test(t)) out.tids_.push_back(t);
    }
  } else {
    TidsetIntersectInto(a.tids_, b.tids_, &out.tids_);
  }
  return out;
}

uint64_t HybridTidset::Sum() const {
  return dense_ ? bits_.SumOfBits() : TidsetSum(tids_);
}

Tidset HybridTidset::ToTids() const {
  return dense_ ? bits_.ToTids() : tids_;
}

void HybridTidset::clear() {
  tids_.clear();
  Tidset().swap(tids_);
  bits_ = Bitmap();
  count_ = 0;
  dense_ = false;
}

}  // namespace colarm
