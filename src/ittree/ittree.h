#ifndef COLARM_ITTREE_ITTREE_H_
#define COLARM_ITTREE_ITTREE_H_

#include <functional>
#include <optional>
#include <vector>

#include "mining/itemset.h"

namespace colarm {

/// The closed IT-tree of the MIP-index's second layer: a trie over the
/// stored closed frequent itemsets (CFIs), keyed by sorted item ids.
///
/// Besides exact lookups it answers the *closed-superset* query that makes
/// closed-itemset storage lossless: the support of ANY itemset X equals the
/// maximum support among stored closed supersets of X (the closure of X has
/// X's support, and every closed superset supports no more). The ARM plan
/// also builds a transient ITTree over locally mined CFIs to map prestored
/// itemsets to local supports.
class ITTree {
 public:
  ITTree() { nodes_.emplace_back(); }

  /// Adds a CFI with its (global or local) support count; returns its
  /// dense id (insertion order). `items` must be sorted and unique; the
  /// same itemset must not be inserted twice.
  uint32_t Insert(Itemset items, uint32_t count);

  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }
  const Itemset& items(uint32_t id) const { return entries_[id].items; }
  uint32_t count(uint32_t id) const { return entries_[id].count; }

  /// Exact-match lookup.
  std::optional<uint32_t> Find(std::span<const ItemId> items) const;

  /// Max support over stored supersets of `items` — i.e. the support of
  /// `items` under the closure property. Returns 0 when no stored CFI
  /// contains `items` (the itemset was below the primary threshold).
  uint32_t MaxSupersetCount(std::span<const ItemId> items) const;

  /// Visits the id of every stored CFI that is a superset of `items`
  /// (including an exact match).
  void ForEachSuperset(std::span<const ItemId> items,
                       const std::function<void(uint32_t id)>& visitor) const;

  /// Visits the id of every stored CFI that is a *subset* of the sorted
  /// itemset `items` (including an exact match). Used by the ARM plan to
  /// intersect locally mined CFIs with the prestored global family.
  void ForEachSubsetOf(std::span<const ItemId> items,
                       const std::function<void(uint32_t id)>& visitor) const;

  /// Visits every stored CFI id.
  void ForEach(const std::function<void(uint32_t id)>& visitor) const;

  /// Number of trie nodes (storage metric reported by index stats).
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Sorted by item id; binary-searchable.
    std::vector<std::pair<ItemId, uint32_t>> children;
    // Entry terminating at this node, if any.
    std::optional<uint32_t> entry;
  };
  struct Entry {
    Itemset items;
    uint32_t count;
  };

  void SupersetWalk(uint32_t node_id, std::span<const ItemId> items,
                    size_t next,
                    const std::function<void(uint32_t id)>& visitor) const;
  void SubsetWalk(uint32_t node_id, std::span<const ItemId> items,
                  size_t next,
                  const std::function<void(uint32_t id)>& visitor) const;

  std::vector<Node> nodes_;
  std::vector<Entry> entries_;
};

}  // namespace colarm

#endif  // COLARM_ITTREE_ITTREE_H_
