#include "ittree/ittree.h"

#include <algorithm>

namespace colarm {

uint32_t ITTree::Insert(Itemset items, uint32_t count) {
  uint32_t node_id = 0;
  for (ItemId item : items) {
    Node& node = nodes_[node_id];
    auto it = std::lower_bound(
        node.children.begin(), node.children.end(), item,
        [](const auto& child, ItemId value) { return child.first < value; });
    if (it != node.children.end() && it->first == item) {
      node_id = it->second;
    } else {
      uint32_t child_id = static_cast<uint32_t>(nodes_.size());
      // Note: taking `it` before emplace_back — the vector<Node> grow can
      // invalidate `node`, so re-resolve after allocation.
      size_t offset = static_cast<size_t>(it - node.children.begin());
      nodes_.emplace_back();
      Node& reloaded = nodes_[node_id];
      reloaded.children.insert(reloaded.children.begin() + offset,
                               {item, child_id});
      node_id = child_id;
    }
  }
  uint32_t id = static_cast<uint32_t>(entries_.size());
  nodes_[node_id].entry = id;
  entries_.push_back({std::move(items), count});
  return id;
}

std::optional<uint32_t> ITTree::Find(std::span<const ItemId> items) const {
  uint32_t node_id = 0;
  for (ItemId item : items) {
    const Node& node = nodes_[node_id];
    auto it = std::lower_bound(
        node.children.begin(), node.children.end(), item,
        [](const auto& child, ItemId value) { return child.first < value; });
    if (it == node.children.end() || it->first != item) return std::nullopt;
    node_id = it->second;
  }
  return nodes_[node_id].entry;
}

void ITTree::SupersetWalk(
    uint32_t node_id, std::span<const ItemId> items, size_t next,
    const std::function<void(uint32_t id)>& visitor) const {
  const Node& node = nodes_[node_id];
  if (next == items.size()) {
    // All required items consumed: every entry below (and here) qualifies.
    if (node.entry.has_value()) visitor(*node.entry);
    for (const auto& [item, child] : node.children) {
      SupersetWalk(child, items, next, visitor);
    }
    return;
  }
  const ItemId target = items[next];
  for (const auto& [item, child] : node.children) {
    if (item < target) {
      // The branch may still contain `target` deeper down.
      SupersetWalk(child, items, next, visitor);
    } else if (item == target) {
      SupersetWalk(child, items, next + 1, visitor);
    } else {
      break;  // paths are item-sorted: target can no longer appear
    }
  }
}

uint32_t ITTree::MaxSupersetCount(std::span<const ItemId> items) const {
  uint32_t best = 0;
  SupersetWalk(0, items, 0, [this, &best](uint32_t id) {
    best = std::max(best, entries_[id].count);
  });
  return best;
}

void ITTree::ForEachSuperset(
    std::span<const ItemId> items,
    const std::function<void(uint32_t id)>& visitor) const {
  SupersetWalk(0, items, 0, visitor);
}

void ITTree::SubsetWalk(
    uint32_t node_id, std::span<const ItemId> items, size_t next,
    const std::function<void(uint32_t id)>& visitor) const {
  const Node& node = nodes_[node_id];
  if (node.entry.has_value()) visitor(*node.entry);
  if (next == items.size()) return;
  // Descend only along children whose item occurs in the remaining suffix
  // of `items`; both lists are sorted, so advance in lockstep.
  size_t pos = next;
  for (const auto& [item, child] : node.children) {
    while (pos < items.size() && items[pos] < item) ++pos;
    if (pos == items.size()) break;
    if (items[pos] == item) {
      SubsetWalk(child, items, pos + 1, visitor);
    }
  }
}

void ITTree::ForEachSubsetOf(
    std::span<const ItemId> items,
    const std::function<void(uint32_t id)>& visitor) const {
  SubsetWalk(0, items, 0, visitor);
}

void ITTree::ForEach(const std::function<void(uint32_t id)>& visitor) const {
  for (uint32_t id = 0; id < entries_.size(); ++id) visitor(id);
}

}  // namespace colarm
