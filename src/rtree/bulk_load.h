#ifndef COLARM_RTREE_BULK_LOAD_H_
#define COLARM_RTREE_BULK_LOAD_H_

#include <vector>

#include "common/thread_pool.h"
#include "rtree/rtree.h"

namespace colarm {

/// Packed R-tree construction for the one-time offline MIP-index build.
/// The paper uses Kamel & Faloutsos' packing (CIKM'93) to reach ~100%
/// node utilization; we provide the standard Sort-Tile-Recursive variant
/// plus a caller-ordered packing (the MIP builder orders CFIs
/// lexicographically by itemset, which clusters similar bounding boxes).

/// Bulk-loads by Sort-Tile-Recursive (Leutenegger et al.): entries are
/// recursively sorted and tiled by successive dimensions, then nodes are
/// packed bottom-up at full fanout. The tile sorts use a total order
/// (center, then entry id), so the resulting tree is identical for any
/// `pool` — a parallel build is byte-equivalent to the sequential one.
RTree BulkLoadSTR(uint32_t dims, std::vector<RTreeEntry> entries,
                  RTree::Options options = {}, ThreadPool* pool = nullptr);

/// Packs entries bottom-up in exactly the order given (no sorting): every
/// node except the last per level is filled to max_entries.
RTree BulkLoadPacked(uint32_t dims, std::vector<RTreeEntry> entries,
                     RTree::Options options = {});

}  // namespace colarm

#endif  // COLARM_RTREE_BULK_LOAD_H_
