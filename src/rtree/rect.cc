#include "rtree/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace colarm {

Rect Rect::MakeEmpty(uint32_t dims) {
  Rect rect;
  rect.bounds_.resize(2 * dims);
  for (uint32_t d = 0; d < dims; ++d) {
    rect.bounds_[2 * d] = std::numeric_limits<ValueId>::max();
    rect.bounds_[2 * d + 1] = 0;
  }
  return rect;
}

Rect Rect::FullDomain(const Schema& schema) {
  Rect rect;
  rect.bounds_.resize(2 * schema.num_attributes());
  for (uint32_t d = 0; d < schema.num_attributes(); ++d) {
    rect.bounds_[2 * d] = 0;
    rect.bounds_[2 * d + 1] =
        static_cast<ValueId>(schema.attribute(d).domain_size() - 1);
  }
  return rect;
}

Rect Rect::FromPoint(std::span<const ValueId> values) {
  Rect rect;
  rect.bounds_.resize(2 * values.size());
  for (uint32_t d = 0; d < values.size(); ++d) {
    rect.bounds_[2 * d] = values[d];
    rect.bounds_[2 * d + 1] = values[d];
  }
  return rect;
}

bool Rect::empty() const {
  if (bounds_.empty()) return true;
  for (uint32_t d = 0; d < dims(); ++d) {
    if (lo(d) > hi(d)) return true;
  }
  return false;
}

void Rect::ExpandToInclude(const Rect& other) {
  if (bounds_.empty()) {
    bounds_ = other.bounds_;
    return;
  }
  for (uint32_t d = 0; d < dims(); ++d) {
    bounds_[2 * d] = std::min(lo(d), other.lo(d));
    bounds_[2 * d + 1] = std::max(hi(d), other.hi(d));
  }
}

void Rect::ExpandToIncludePoint(std::span<const ValueId> values) {
  if (bounds_.empty()) {
    *this = FromPoint(values);
    return;
  }
  for (uint32_t d = 0; d < dims(); ++d) {
    bounds_[2 * d] = std::min(lo(d), values[d]);
    bounds_[2 * d + 1] = std::max(hi(d), values[d]);
  }
}

bool Rect::Intersects(const Rect& other) const {
  if (empty() || other.empty()) return false;
  for (uint32_t d = 0; d < dims(); ++d) {
    if (hi(d) < other.lo(d) || lo(d) > other.hi(d)) return false;
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  if (empty()) return false;
  if (other.empty()) return true;
  for (uint32_t d = 0; d < dims(); ++d) {
    if (other.lo(d) < lo(d) || other.hi(d) > hi(d)) return false;
  }
  return true;
}

bool Rect::ContainsPoint(std::span<const ValueId> values) const {
  if (empty()) return false;
  for (uint32_t d = 0; d < dims(); ++d) {
    if (values[d] < lo(d) || values[d] > hi(d)) return false;
  }
  return true;
}

double Rect::LogVolume() const {
  if (empty()) return -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (uint32_t d = 0; d < dims(); ++d) {
    sum += std::log(static_cast<double>(Extent(d)));
  }
  return sum;
}

uint32_t Rect::Extent(uint32_t d) const {
  if (lo(d) > hi(d)) return 0;
  return static_cast<uint32_t>(hi(d)) - lo(d) + 1;
}

double Rect::NormalizedExtent(uint32_t d, uint32_t domain_size) const {
  if (domain_size == 0) return 0.0;
  return static_cast<double>(Extent(d)) / domain_size;
}

std::string Rect::ToString() const {
  std::string out = "[";
  for (uint32_t d = 0; d < dims(); ++d) {
    if (d > 0) out += " x ";
    out += StrFormat("%u..%u", lo(d), hi(d));
  }
  out += "]";
  return out;
}

}  // namespace colarm
