#include "rtree/bulk_load.h"

#include <algorithm>
#include <cmath>

namespace colarm {

/// Accesses RTree internals to assemble packed trees bottom-up.
class RTreeBuilder {
 public:
  static RTree Build(uint32_t dims, const std::vector<RTreeEntry>& entries,
                     RTree::Options options) {
    RTree tree(dims, options);
    if (entries.empty()) return tree;

    tree.nodes_.clear();
    tree.free_nodes_.clear();

    // Leaf level: pack entries in order.
    std::vector<uint32_t> level;
    for (const auto& [begin, end] :
         ChunkBoundaries(entries.size(), options)) {
      uint32_t node_id = tree.NewNode(/*leaf=*/true);
      for (size_t i = begin; i < end; ++i) {
        tree.AddToNode(node_id, entries[i].box, entries[i].id,
                       entries[i].count);
      }
      level.push_back(node_id);
    }

    // Internal levels until a single root remains.
    uint32_t height = 1;
    while (level.size() > 1) {
      std::vector<uint32_t> parents;
      for (const auto& [begin, end] : ChunkBoundaries(level.size(), options)) {
        uint32_t node_id = tree.NewNode(/*leaf=*/false);
        for (size_t i = begin; i < end; ++i) {
          uint32_t child = level[i];
          tree.AddToNode(node_id, tree.nodes_[child].mbr, child,
                         tree.nodes_[child].max_count);
        }
        parents.push_back(node_id);
      }
      level = std::move(parents);
      ++height;
    }

    tree.root_ = level[0];
    tree.height_ = height;
    tree.size_ = static_cast<uint32_t>(entries.size());
    return tree;
  }

 private:
  // [begin, end) ranges of size <= max_entries; the final two chunks are
  // rebalanced so no chunk falls below min_entries (unless there is only
  // one chunk total).
  static std::vector<std::pair<size_t, size_t>> ChunkBoundaries(
      size_t total, const RTree::Options& options) {
    std::vector<std::pair<size_t, size_t>> chunks;
    const size_t cap = options.max_entries;
    size_t begin = 0;
    while (begin < total) {
      size_t end = std::min(begin + cap, total);
      chunks.emplace_back(begin, end);
      begin = end;
    }
    if (chunks.size() >= 2) {
      auto& last = chunks.back();
      auto& prev = chunks[chunks.size() - 2];
      if (last.second - last.first < options.min_entries) {
        size_t combined_begin = prev.first;
        size_t combined_end = last.second;
        size_t half = (combined_end - combined_begin + 1) / 2;
        prev = {combined_begin, combined_begin + half};
        last = {combined_begin + half, combined_end};
      }
    }
    return chunks;
  }
};

namespace {

double Center(const Rect& box, uint32_t d) {
  return (static_cast<double>(box.lo(d)) + box.hi(d)) / 2.0;
}

// Total order for the tile sort: center along `d`, ties broken by entry id.
// A total order makes the sorted sequence unique, so the sequential
// std::sort and the parallel chunked sort-merge below produce identical
// trees — the determinism contract of the parallel index build.
bool TileLess(const RTreeEntry& a, const RTreeEntry& b, uint32_t d) {
  const double ca = Center(a.box, d);
  const double cb = Center(b.box, d);
  if (ca != cb) return ca < cb;
  return a.id < b.id;
}

// Entry count below which a parallel sort is not worth the merge passes.
constexpr size_t kParallelSortThreshold = 2048;

// Sorts entries[lo, hi) by TileLess along `d`, on the pool when the range
// is large enough: chunk-sort then fold with inplace_merge. The comparator
// is a total order, so the result equals the sequential sort's.
void TileSort(std::vector<RTreeEntry>& entries, size_t lo, size_t hi,
              uint32_t d, ThreadPool* pool) {
  auto less = [d](const RTreeEntry& a, const RTreeEntry& b) {
    return TileLess(a, b, d);
  };
  const size_t count = hi - lo;
  if (!IsParallel(pool) || count < kParallelSortThreshold) {
    std::sort(entries.begin() + lo, entries.begin() + hi, less);
    return;
  }

  const size_t chunks = std::min<size_t>(pool->parallelism(), count);
  std::vector<std::pair<size_t, size_t>> runs(chunks);
  ParallelChunks(pool, count, chunks,
                 [&](size_t chunk, size_t begin, size_t end) {
                   runs[chunk] = {lo + begin, lo + end};
                   std::sort(entries.begin() + lo + begin,
                             entries.begin() + lo + end, less);
                 });
  // Fold adjacent runs; each pass merges disjoint pairs in parallel.
  while (runs.size() > 1) {
    std::vector<std::pair<size_t, size_t>> merged((runs.size() + 1) / 2);
    ParallelFor(pool, merged.size(), [&](size_t pair) {
      const size_t left = 2 * pair;
      if (left + 1 < runs.size()) {
        std::inplace_merge(entries.begin() + runs[left].first,
                           entries.begin() + runs[left].second,
                           entries.begin() + runs[left + 1].second, less);
        merged[pair] = {runs[left].first, runs[left + 1].second};
      } else {
        merged[pair] = runs[left];
      }
    });
    runs = std::move(merged);
  }
}

// Recursive Sort-Tile step: order entries[lo, hi) by dimension `d`, slice
// into vertical slabs, and recurse into each slab with the next dimension.
void StrTile(std::vector<RTreeEntry>& entries, size_t lo, size_t hi,
             uint32_t d, uint32_t dims, uint32_t node_cap, ThreadPool* pool) {
  const size_t count = hi - lo;
  TileSort(entries, lo, hi, d, pool);
  if (count <= node_cap || d + 1 >= dims) return;
  const double leaves = std::ceil(static_cast<double>(count) / node_cap);
  const auto slabs = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::pow(leaves, 1.0 / (dims - d)))));
  const size_t slab_size = (count + slabs - 1) / slabs;
  // Slabs are disjoint ranges; recurse over them concurrently.
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t begin = lo; begin < hi; begin += slab_size) {
    ranges.emplace_back(begin, std::min(begin + slab_size, hi));
  }
  ParallelFor(pool, ranges.size(), [&](size_t s) {
    StrTile(entries, ranges[s].first, ranges[s].second, d + 1, dims,
            node_cap, pool);
  });
}

}  // namespace

RTree BulkLoadSTR(uint32_t dims, std::vector<RTreeEntry> entries,
                  RTree::Options options, ThreadPool* pool) {
  if (!entries.empty()) {
    StrTile(entries, 0, entries.size(), 0, dims, options.max_entries, pool);
  }
  return RTreeBuilder::Build(dims, entries, options);
}

RTree BulkLoadPacked(uint32_t dims, std::vector<RTreeEntry> entries,
                     RTree::Options options) {
  return RTreeBuilder::Build(dims, entries, options);
}

}  // namespace colarm
