#ifndef COLARM_RTREE_RECT_H_
#define COLARM_RTREE_RECT_H_

#include <span>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/types.h"

namespace colarm {

/// Axis-aligned box over the discretized value space: one inclusive
/// [lo, hi] ValueId interval per attribute. Dimensionality is dynamic (one
/// dimension per relation attribute). A default-constructed or
/// MakeEmpty() rect is "empty" (contains nothing) until expanded.
class Rect {
 public:
  Rect() = default;

  /// Empty rect of the given dimensionality (lo > hi in every dimension).
  static Rect MakeEmpty(uint32_t dims);

  /// [0, domain_size-1] in every dimension of the schema.
  static Rect FullDomain(const Schema& schema);

  /// Point rect from one value per dimension.
  static Rect FromPoint(std::span<const ValueId> values);

  uint32_t dims() const { return static_cast<uint32_t>(bounds_.size() / 2); }
  bool empty() const;

  ValueId lo(uint32_t d) const { return bounds_[2 * d]; }
  ValueId hi(uint32_t d) const { return bounds_[2 * d + 1]; }
  void SetInterval(uint32_t d, ValueId lo, ValueId hi) {
    bounds_[2 * d] = lo;
    bounds_[2 * d + 1] = hi;
  }

  /// Grows this rect to cover `other` (dims must match; empty operands are
  /// handled).
  void ExpandToInclude(const Rect& other);
  void ExpandToIncludePoint(std::span<const ValueId> values);

  /// Box intersection test. Empty rects intersect nothing.
  bool Intersects(const Rect& other) const;

  /// True iff this rect fully contains `other` (other ⊆ this). An empty
  /// `other` is contained in everything non-empty of equal dims.
  bool Contains(const Rect& other) const;

  bool ContainsPoint(std::span<const ValueId> values) const;

  /// Sum over dimensions of log(extent) — a volume proxy that cannot
  /// overflow in high dimensions. Empty rects return -infinity.
  double LogVolume() const;

  /// Extent (hi - lo + 1) of one dimension; 0 when empty.
  uint32_t Extent(uint32_t d) const;

  /// Extent normalized by the attribute's domain size, in (0, 1].
  double NormalizedExtent(uint32_t d, uint32_t domain_size) const;

  bool operator==(const Rect& other) const = default;

  std::string ToString() const;

 private:
  // lo0, hi0, lo1, hi1, ... (2 * dims values).
  std::vector<ValueId> bounds_;
};

}  // namespace colarm

#endif  // COLARM_RTREE_RECT_H_
