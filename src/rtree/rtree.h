#ifndef COLARM_RTREE_RTREE_H_
#define COLARM_RTREE_RTREE_H_

#include <functional>
#include <vector>

#include "rtree/rect.h"

namespace colarm {

/// One indexed object: a bounding box, the caller's id (for MIPs, the CFI
/// ordinal), and the object's global support count. The count powers the
/// paper's *Supported R-tree* filter (Section 4.3): internal nodes track
/// the maximum count below them, so SUPPORTED-SEARCH can prune whole
/// subtrees whose best-case global support cannot satisfy the query's
/// absolute minsupport.
struct RTreeEntry {
  Rect box;
  uint32_t id = 0;
  uint32_t count = 0;
};

/// n-dimensional R-tree (Guttman, SIGMOD'84) with quadratic split for
/// dynamic inserts, deletion with re-insertion, and support-aware search.
/// Packed (bulk-loaded) construction lives in rtree/bulk_load.h.
class RTree {
 public:
  struct Options {
    uint32_t max_entries = 16;  // node capacity M
    uint32_t min_entries = 6;   // underflow threshold m (<= M/2)

    friend bool operator==(const Options&, const Options&) = default;
  };

  /// Counters exposed to the cost model and plan statistics.
  struct SearchStats {
    uint64_t nodes_visited = 0;
    uint64_t boxes_checked = 0;
    uint64_t entries_pruned_by_support = 0;
  };

  /// Match callback: entry plus whether its box is fully contained in the
  /// query box (feeds the contained/overlapped split of SS-E-U-V).
  using Visitor = std::function<void(const RTreeEntry& entry, bool contained)>;

  explicit RTree(uint32_t dims) : RTree(dims, Options()) {}
  RTree(uint32_t dims, Options options);

  uint32_t dims() const { return dims_; }
  uint32_t size() const { return size_; }
  /// Height in levels; 1 = root is a leaf. Leaves are level 0 internally.
  uint32_t height() const { return height_; }
  const Options& options() const { return options_; }

  void Insert(const RTreeEntry& entry);

  /// Removes the entry with the given id and exact box. Returns false if
  /// absent. Underflowing nodes are dissolved and their entries
  /// re-inserted (Guttman's CondenseTree).
  bool Remove(const Rect& box, uint32_t id);

  /// Reports every entry whose box intersects `query`.
  void Search(const Rect& query, const Visitor& visitor,
              SearchStats* stats = nullptr) const;

  /// Supported R-tree filter: like Search but skips subtrees/entries whose
  /// (max) support count is below `min_count` (Lemma 4.4 upper bound).
  void SearchSupported(const Rect& query, uint32_t min_count,
                       const Visitor& visitor,
                       SearchStats* stats = nullptr) const;

  /// Level-order walk over nodes for statistics collection. `level` counts
  /// from the root (0) down to the leaves (height-1).
  using NodeVisitor = std::function<void(uint32_t level, const Rect& mbr,
                                         bool is_leaf, uint32_t fanout)>;
  void ForEachNode(const NodeVisitor& visitor) const;

  /// Structural invariants (MBR correctness, max-count correctness, fanout
  /// bounds); used by tests. Returns false on any violation.
  bool CheckInvariants() const;

 private:
  friend class RTreeBuilder;  // packed construction

  struct Node {
    bool leaf = true;
    // Parallel arrays: child boxes plus, per slot, either a child node id
    // (internal) or an entry id (leaf), and the (max) support count.
    std::vector<Rect> boxes;
    std::vector<uint32_t> ids;
    std::vector<uint32_t> counts;
    Rect mbr;
    uint32_t max_count = 0;

    uint32_t fanout() const { return static_cast<uint32_t>(boxes.size()); }
  };

  uint32_t NewNode(bool leaf);
  void RecomputeNode(uint32_t node_id);
  uint32_t ChooseLeaf(const Rect& box, std::vector<uint32_t>* path) const;
  void AddToNode(uint32_t node_id, const Rect& box, uint32_t id,
                 uint32_t count);
  void SplitNode(uint32_t node_id, std::vector<uint32_t>& path);
  void AdjustPath(const std::vector<uint32_t>& path);
  void SearchImpl(uint32_t node_id, const Rect& query, uint32_t min_count,
                  bool use_support, const Visitor& visitor,
                  SearchStats* stats) const;
  bool RemoveImpl(uint32_t node_id, const Rect& box, uint32_t id,
                  std::vector<uint32_t>* path);
  bool CheckNode(uint32_t node_id, uint32_t depth) const;
  uint32_t NodeHeight(uint32_t node_id) const;
  void CollectLeafEntries(uint32_t node_id,
                          std::vector<RTreeEntry>* out) const;
  void FreeSubtree(uint32_t node_id);

  uint32_t dims_;
  Options options_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_nodes_;
  uint32_t root_ = 0;
  uint32_t size_ = 0;
  uint32_t height_ = 1;
};

}  // namespace colarm

#endif  // COLARM_RTREE_RTREE_H_
