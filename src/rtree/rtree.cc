#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace colarm {

RTree::RTree(uint32_t dims, Options options) : dims_(dims), options_(options) {
  assert(options_.min_entries >= 1);
  assert(options_.min_entries <= options_.max_entries / 2);
  root_ = NewNode(/*leaf=*/true);
}

uint32_t RTree::NewNode(bool leaf) {
  uint32_t id;
  if (!free_nodes_.empty()) {
    id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = Node{};
  } else {
    id = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[id].leaf = leaf;
  nodes_[id].mbr = Rect::MakeEmpty(dims_);
  return id;
}

void RTree::RecomputeNode(uint32_t node_id) {
  Node& node = nodes_[node_id];
  node.mbr = Rect::MakeEmpty(dims_);
  node.max_count = 0;
  for (uint32_t i = 0; i < node.fanout(); ++i) {
    node.mbr.ExpandToInclude(node.boxes[i]);
    node.max_count = std::max(node.max_count, node.counts[i]);
  }
}

uint32_t RTree::ChooseLeaf(const Rect& box,
                           std::vector<uint32_t>* path) const {
  uint32_t node_id = root_;
  while (true) {
    path->push_back(node_id);
    const Node& node = nodes_[node_id];
    if (node.leaf) return node_id;
    // Least log-volume enlargement; ties by smaller resulting volume.
    uint32_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (uint32_t i = 0; i < node.fanout(); ++i) {
      Rect merged = node.boxes[i];
      merged.ExpandToInclude(box);
      double before = node.boxes[i].LogVolume();
      double after = merged.LogVolume();
      double enlargement = after - before;
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && after < best_volume)) {
        best = i;
        best_enlargement = enlargement;
        best_volume = after;
      }
    }
    node_id = node.ids[best];
  }
}

void RTree::AddToNode(uint32_t node_id, const Rect& box, uint32_t id,
                      uint32_t count) {
  Node& node = nodes_[node_id];
  node.boxes.push_back(box);
  node.ids.push_back(id);
  node.counts.push_back(count);
  node.mbr.ExpandToInclude(box);
  node.max_count = std::max(node.max_count, count);
}

void RTree::AdjustPath(const std::vector<uint32_t>& path) {
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    uint32_t node_id = *it;
    RecomputeNode(node_id);
    // Refresh this node's slot in its parent (if any).
    if (it + 1 != path.rend()) {
      uint32_t parent_id = *(it + 1);
      Node& parent = nodes_[parent_id];
      for (uint32_t i = 0; i < parent.fanout(); ++i) {
        if (parent.ids[i] == node_id) {
          parent.boxes[i] = nodes_[node_id].mbr;
          parent.counts[i] = nodes_[node_id].max_count;
          break;
        }
      }
    }
  }
}

namespace {

// Quadratic-split bookkeeping: which group each slot lands in.
struct SplitAssignment {
  std::vector<int> group;  // -1 unassigned, 0 or 1
  Rect mbr[2];
  uint32_t sizes[2] = {0, 0};
};

}  // namespace

void RTree::SplitNode(uint32_t node_id, std::vector<uint32_t>& path) {
  Node& node = nodes_[node_id];
  const uint32_t n = node.fanout();

  // PickSeeds: the pair wasting the most volume if grouped together.
  uint32_t seed_a = 0;
  uint32_t seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      Rect merged = node.boxes[i];
      merged.ExpandToInclude(node.boxes[j]);
      double waste = merged.LogVolume() -
                     std::max(node.boxes[i].LogVolume(),
                              node.boxes[j].LogVolume());
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  SplitAssignment split;
  split.group.assign(n, -1);
  split.group[seed_a] = 0;
  split.group[seed_b] = 1;
  split.mbr[0] = node.boxes[seed_a];
  split.mbr[1] = node.boxes[seed_b];
  split.sizes[0] = split.sizes[1] = 1;

  uint32_t remaining = n - 2;
  while (remaining > 0) {
    // Force-assign when one group must absorb everything left to reach the
    // minimum fill.
    for (int g = 0; g < 2; ++g) {
      if (split.sizes[g] + remaining == options_.min_entries) {
        for (uint32_t i = 0; i < n; ++i) {
          if (split.group[i] == -1) {
            split.group[i] = g;
            split.mbr[g].ExpandToInclude(node.boxes[i]);
            ++split.sizes[g];
          }
        }
        remaining = 0;
        break;
      }
    }
    if (remaining == 0) break;

    // PickNext: the unassigned slot with the largest preference gap.
    uint32_t pick = 0;
    double best_gap = -1.0;
    double d0_pick = 0.0;
    double d1_pick = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      if (split.group[i] != -1) continue;
      Rect m0 = split.mbr[0];
      m0.ExpandToInclude(node.boxes[i]);
      Rect m1 = split.mbr[1];
      m1.ExpandToInclude(node.boxes[i]);
      double d0 = m0.LogVolume() - split.mbr[0].LogVolume();
      double d1 = m1.LogVolume() - split.mbr[1].LogVolume();
      double gap = std::abs(d0 - d1);
      if (gap > best_gap) {
        best_gap = gap;
        pick = i;
        d0_pick = d0;
        d1_pick = d1;
      }
    }
    int g;
    if (d0_pick != d1_pick) {
      g = d0_pick < d1_pick ? 0 : 1;
    } else {
      g = split.sizes[0] <= split.sizes[1] ? 0 : 1;
    }
    split.group[pick] = g;
    split.mbr[g].ExpandToInclude(node.boxes[pick]);
    ++split.sizes[g];
    --remaining;
  }

  // Materialize the sibling (group 1); keep group 0 in place.
  const bool was_leaf = node.leaf;
  uint32_t sibling_id = NewNode(was_leaf);
  // NewNode may reallocate nodes_, so re-take the reference.
  Node& self = nodes_[node_id];
  Node& sibling = nodes_[sibling_id];
  std::vector<Rect> keep_boxes;
  std::vector<uint32_t> keep_ids;
  std::vector<uint32_t> keep_counts;
  for (uint32_t i = 0; i < n; ++i) {
    if (split.group[i] == 0) {
      keep_boxes.push_back(self.boxes[i]);
      keep_ids.push_back(self.ids[i]);
      keep_counts.push_back(self.counts[i]);
    } else {
      sibling.boxes.push_back(self.boxes[i]);
      sibling.ids.push_back(self.ids[i]);
      sibling.counts.push_back(self.counts[i]);
    }
  }
  self.boxes = std::move(keep_boxes);
  self.ids = std::move(keep_ids);
  self.counts = std::move(keep_counts);
  RecomputeNode(node_id);
  RecomputeNode(sibling_id);

  // Hook the sibling into the parent, growing a new root if needed.
  if (node_id == root_) {
    uint32_t new_root = NewNode(/*leaf=*/false);
    Node& root = nodes_[new_root];
    root.boxes = {nodes_[node_id].mbr, nodes_[sibling_id].mbr};
    root.ids = {node_id, sibling_id};
    root.counts = {nodes_[node_id].max_count, nodes_[sibling_id].max_count};
    RecomputeNode(new_root);
    root_ = new_root;
    ++height_;
    path.insert(path.begin(), new_root);
    return;
  }

  // Parent is the element before node_id in the path.
  auto it = std::find(path.begin(), path.end(), node_id);
  assert(it != path.begin() && it != path.end());
  uint32_t parent_id = *(it - 1);
  // Refresh the split node's (now smaller) slot in the parent right away:
  // if the parent itself splits next, the slot may migrate to the parent's
  // sibling, out of AdjustPath's reach.
  Node& parent = nodes_[parent_id];
  for (uint32_t i = 0; i < parent.fanout(); ++i) {
    if (parent.ids[i] == node_id) {
      parent.boxes[i] = nodes_[node_id].mbr;
      parent.counts[i] = nodes_[node_id].max_count;
      break;
    }
  }
  AddToNode(parent_id, nodes_[sibling_id].mbr, sibling_id,
            nodes_[sibling_id].max_count);
  if (nodes_[parent_id].fanout() > options_.max_entries) {
    SplitNode(parent_id, path);
  }
}

void RTree::Insert(const RTreeEntry& entry) {
  assert(entry.box.dims() == dims_);
  std::vector<uint32_t> path;
  uint32_t leaf = ChooseLeaf(entry.box, &path);
  AddToNode(leaf, entry.box, entry.id, entry.count);
  if (nodes_[leaf].fanout() > options_.max_entries) {
    SplitNode(leaf, path);
  }
  AdjustPath(path);
  ++size_;
}

void RTree::SearchImpl(uint32_t node_id, const Rect& query, uint32_t min_count,
                       bool use_support, const Visitor& visitor,
                       SearchStats* stats) const {
  const Node& node = nodes_[node_id];
  if (stats != nullptr) ++stats->nodes_visited;
  for (uint32_t i = 0; i < node.fanout(); ++i) {
    if (stats != nullptr) ++stats->boxes_checked;
    if (use_support && node.counts[i] < min_count) {
      if (stats != nullptr) ++stats->entries_pruned_by_support;
      continue;
    }
    if (!query.Intersects(node.boxes[i])) continue;
    if (node.leaf) {
      RTreeEntry entry{node.boxes[i], node.ids[i], node.counts[i]};
      visitor(entry, query.Contains(node.boxes[i]));
    } else {
      SearchImpl(node.ids[i], query, min_count, use_support, visitor, stats);
    }
  }
}

void RTree::Search(const Rect& query, const Visitor& visitor,
                   SearchStats* stats) const {
  SearchImpl(root_, query, 0, /*use_support=*/false, visitor, stats);
}

void RTree::SearchSupported(const Rect& query, uint32_t min_count,
                            const Visitor& visitor,
                            SearchStats* stats) const {
  SearchImpl(root_, query, min_count, /*use_support=*/true, visitor, stats);
}

bool RTree::RemoveImpl(uint32_t node_id, const Rect& box, uint32_t id,
                       std::vector<uint32_t>* path) {
  path->push_back(node_id);
  Node& node = nodes_[node_id];
  if (node.leaf) {
    for (uint32_t i = 0; i < node.fanout(); ++i) {
      if (node.ids[i] == id && node.boxes[i] == box) {
        node.boxes.erase(node.boxes.begin() + i);
        node.ids.erase(node.ids.begin() + i);
        node.counts.erase(node.counts.begin() + i);
        return true;
      }
    }
  } else {
    for (uint32_t i = 0; i < node.fanout(); ++i) {
      if (node.boxes[i].Contains(box) &&
          RemoveImpl(node.ids[i], box, id, path)) {
        return true;
      }
    }
  }
  path->pop_back();
  return false;
}

bool RTree::Remove(const Rect& box, uint32_t id) {
  std::vector<uint32_t> path;
  if (!RemoveImpl(root_, box, id, &path)) return false;
  --size_;

  // CondenseTree: dissolve underflowing non-root nodes bottom-up and
  // remember their leaf entries for re-insertion.
  std::vector<RTreeEntry> orphans;
  for (size_t depth = path.size(); depth-- > 1;) {
    uint32_t node_id = path[depth];
    uint32_t parent_id = path[depth - 1];
    if (nodes_[node_id].fanout() < options_.min_entries) {
      CollectLeafEntries(node_id, &orphans);
      Node& parent = nodes_[parent_id];
      for (uint32_t i = 0; i < parent.fanout(); ++i) {
        if (parent.ids[i] == node_id) {
          parent.boxes.erase(parent.boxes.begin() + i);
          parent.ids.erase(parent.ids.begin() + i);
          parent.counts.erase(parent.counts.begin() + i);
          break;
        }
      }
      FreeSubtree(node_id);
    }
  }
  AdjustPath(path);

  // Shrink the root while it is an internal node with a single child.
  while (!nodes_[root_].leaf && nodes_[root_].fanout() == 1) {
    uint32_t old_root = root_;
    root_ = nodes_[root_].ids[0];
    free_nodes_.push_back(old_root);
    --height_;
  }
  if (!nodes_[root_].leaf && nodes_[root_].fanout() == 0) {
    nodes_[root_].leaf = true;
    height_ = 1;
  }

  size_ -= static_cast<uint32_t>(orphans.size());
  for (const RTreeEntry& orphan : orphans) Insert(orphan);
  return true;
}

void RTree::CollectLeafEntries(uint32_t node_id,
                               std::vector<RTreeEntry>* out) const {
  const Node& node = nodes_[node_id];
  if (node.leaf) {
    for (uint32_t i = 0; i < node.fanout(); ++i) {
      out->push_back({node.boxes[i], node.ids[i], node.counts[i]});
    }
  } else {
    for (uint32_t child : node.ids) CollectLeafEntries(child, out);
  }
}

void RTree::FreeSubtree(uint32_t node_id) {
  const Node& node = nodes_[node_id];
  if (!node.leaf) {
    for (uint32_t child : node.ids) FreeSubtree(child);
  }
  free_nodes_.push_back(node_id);
}

void RTree::ForEachNode(const NodeVisitor& visitor) const {
  struct Item {
    uint32_t node;
    uint32_t level;
  };
  std::vector<Item> stack = {{root_, 0}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const Node& node = nodes_[item.node];
    visitor(item.level, node.mbr, node.leaf, node.fanout());
    if (!node.leaf) {
      for (uint32_t child : node.ids) {
        stack.push_back({child, item.level + 1});
      }
    }
  }
}

uint32_t RTree::NodeHeight(uint32_t node_id) const {
  uint32_t h = 1;
  uint32_t cur = node_id;
  while (!nodes_[cur].leaf) {
    ++h;
    cur = nodes_[cur].ids[0];
  }
  return h;
}

bool RTree::CheckNode(uint32_t node_id, uint32_t depth) const {
  const Node& node = nodes_[node_id];
  if (node_id != root_ && node.fanout() < options_.min_entries) return false;
  if (node.fanout() > options_.max_entries) return false;

  Rect expected = Rect::MakeEmpty(dims_);
  uint32_t expected_count = 0;
  for (uint32_t i = 0; i < node.fanout(); ++i) {
    expected.ExpandToInclude(node.boxes[i]);
    expected_count = std::max(expected_count, node.counts[i]);
    if (!node.leaf) {
      const Node& child = nodes_[node.ids[i]];
      if (node.boxes[i] != child.mbr) return false;
      if (node.counts[i] != child.max_count) return false;
      if (!CheckNode(node.ids[i], depth + 1)) return false;
    }
  }
  if (node.fanout() > 0 &&
      (expected != node.mbr || expected_count != node.max_count)) {
    return false;
  }
  // All leaves must sit at the same depth.
  if (node.leaf && depth + 1 != height_) return false;
  return true;
}

bool RTree::CheckInvariants() const {
  if (size_ == 0) {
    return nodes_[root_].leaf && nodes_[root_].fanout() == 0;
  }
  return CheckNode(root_, 0);
}

}  // namespace colarm
