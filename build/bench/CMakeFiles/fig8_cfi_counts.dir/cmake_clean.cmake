file(REMOVE_RECURSE
  "CMakeFiles/fig8_cfi_counts.dir/fig8_cfi_counts.cc.o"
  "CMakeFiles/fig8_cfi_counts.dir/fig8_cfi_counts.cc.o.d"
  "fig8_cfi_counts"
  "fig8_cfi_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cfi_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
