# Empty dependencies file for fig8_cfi_counts.
# This may be replaced when dependencies are built.
