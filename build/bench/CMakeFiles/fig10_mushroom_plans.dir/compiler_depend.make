# Empty compiler generated dependencies file for fig10_mushroom_plans.
# This may be replaced when dependencies are built.
