file(REMOVE_RECURSE
  "CMakeFiles/fig10_mushroom_plans.dir/fig10_mushroom_plans.cc.o"
  "CMakeFiles/fig10_mushroom_plans.dir/fig10_mushroom_plans.cc.o.d"
  "fig10_mushroom_plans"
  "fig10_mushroom_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mushroom_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
