file(REMOVE_RECURSE
  "CMakeFiles/tab_optimizer_accuracy.dir/tab_optimizer_accuracy.cc.o"
  "CMakeFiles/tab_optimizer_accuracy.dir/tab_optimizer_accuracy.cc.o.d"
  "tab_optimizer_accuracy"
  "tab_optimizer_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_optimizer_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
