# Empty compiler generated dependencies file for tab_optimizer_accuracy.
# This may be replaced when dependencies are built.
