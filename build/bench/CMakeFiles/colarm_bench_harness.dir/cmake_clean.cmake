file(REMOVE_RECURSE
  "../lib/libcolarm_bench_harness.a"
  "../lib/libcolarm_bench_harness.pdb"
  "CMakeFiles/colarm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/colarm_bench_harness.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colarm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
