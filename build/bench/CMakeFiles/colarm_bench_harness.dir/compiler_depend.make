# Empty compiler generated dependencies file for colarm_bench_harness.
# This may be replaced when dependencies are built.
