file(REMOVE_RECURSE
  "../lib/libcolarm_bench_harness.a"
)
