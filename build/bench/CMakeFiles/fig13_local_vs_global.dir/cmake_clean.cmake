file(REMOVE_RECURSE
  "CMakeFiles/fig13_local_vs_global.dir/fig13_local_vs_global.cc.o"
  "CMakeFiles/fig13_local_vs_global.dir/fig13_local_vs_global.cc.o.d"
  "fig13_local_vs_global"
  "fig13_local_vs_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_local_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
