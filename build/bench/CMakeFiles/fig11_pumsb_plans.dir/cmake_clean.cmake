file(REMOVE_RECURSE
  "CMakeFiles/fig11_pumsb_plans.dir/fig11_pumsb_plans.cc.o"
  "CMakeFiles/fig11_pumsb_plans.dir/fig11_pumsb_plans.cc.o.d"
  "fig11_pumsb_plans"
  "fig11_pumsb_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pumsb_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
