# Empty compiler generated dependencies file for fig11_pumsb_plans.
# This may be replaced when dependencies are built.
