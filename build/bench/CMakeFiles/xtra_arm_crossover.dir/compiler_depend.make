# Empty compiler generated dependencies file for xtra_arm_crossover.
# This may be replaced when dependencies are built.
