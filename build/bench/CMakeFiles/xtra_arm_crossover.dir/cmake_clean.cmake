file(REMOVE_RECURSE
  "CMakeFiles/xtra_arm_crossover.dir/xtra_arm_crossover.cc.o"
  "CMakeFiles/xtra_arm_crossover.dir/xtra_arm_crossover.cc.o.d"
  "xtra_arm_crossover"
  "xtra_arm_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtra_arm_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
