# Empty dependencies file for micro_mining.
# This may be replaced when dependencies are built.
