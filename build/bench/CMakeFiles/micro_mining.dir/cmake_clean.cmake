file(REMOVE_RECURSE
  "CMakeFiles/micro_mining.dir/micro_mining.cc.o"
  "CMakeFiles/micro_mining.dir/micro_mining.cc.o.d"
  "micro_mining"
  "micro_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
