file(REMOVE_RECURSE
  "CMakeFiles/fig9_chess_plans.dir/fig9_chess_plans.cc.o"
  "CMakeFiles/fig9_chess_plans.dir/fig9_chess_plans.cc.o.d"
  "fig9_chess_plans"
  "fig9_chess_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_chess_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
