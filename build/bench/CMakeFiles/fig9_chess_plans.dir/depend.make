# Empty dependencies file for fig9_chess_plans.
# This may be replaced when dependencies are built.
