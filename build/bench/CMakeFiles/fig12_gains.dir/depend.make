# Empty dependencies file for fig12_gains.
# This may be replaced when dependencies are built.
