file(REMOVE_RECURSE
  "CMakeFiles/fig12_gains.dir/fig12_gains.cc.o"
  "CMakeFiles/fig12_gains.dir/fig12_gains.cc.o.d"
  "fig12_gains"
  "fig12_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
