file(REMOVE_RECURSE
  "libcolarm.a"
)
