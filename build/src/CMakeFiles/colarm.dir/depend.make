# Empty dependencies file for colarm.
# This may be replaced when dependencies are built.
