
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/status.cc" "src/CMakeFiles/colarm.dir/common/status.cc.o" "gcc" "src/CMakeFiles/colarm.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/colarm.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/colarm.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/CMakeFiles/colarm.dir/core/batch.cc.o" "gcc" "src/CMakeFiles/colarm.dir/core/batch.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/colarm.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/colarm.dir/core/engine.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/colarm.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/colarm.dir/core/explain.cc.o.d"
  "/root/repo/src/core/export.cc" "src/CMakeFiles/colarm.dir/core/export.cc.o" "gcc" "src/CMakeFiles/colarm.dir/core/export.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/colarm.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/colarm.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/parameter_space.cc" "src/CMakeFiles/colarm.dir/core/parameter_space.cc.o" "gcc" "src/CMakeFiles/colarm.dir/core/parameter_space.cc.o.d"
  "/root/repo/src/core/query_parser.cc" "src/CMakeFiles/colarm.dir/core/query_parser.cc.o" "gcc" "src/CMakeFiles/colarm.dir/core/query_parser.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/CMakeFiles/colarm.dir/core/recommender.cc.o" "gcc" "src/CMakeFiles/colarm.dir/core/recommender.cc.o.d"
  "/root/repo/src/cost/calibration.cc" "src/CMakeFiles/colarm.dir/cost/calibration.cc.o" "gcc" "src/CMakeFiles/colarm.dir/cost/calibration.cc.o.d"
  "/root/repo/src/cost/cardinality.cc" "src/CMakeFiles/colarm.dir/cost/cardinality.cc.o" "gcc" "src/CMakeFiles/colarm.dir/cost/cardinality.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/colarm.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/colarm.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/data/csv_reader.cc" "src/CMakeFiles/colarm.dir/data/csv_reader.cc.o" "gcc" "src/CMakeFiles/colarm.dir/data/csv_reader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/colarm.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/colarm.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/discretizer.cc" "src/CMakeFiles/colarm.dir/data/discretizer.cc.o" "gcc" "src/CMakeFiles/colarm.dir/data/discretizer.cc.o.d"
  "/root/repo/src/data/histogram.cc" "src/CMakeFiles/colarm.dir/data/histogram.cc.o" "gcc" "src/CMakeFiles/colarm.dir/data/histogram.cc.o.d"
  "/root/repo/src/data/salary_dataset.cc" "src/CMakeFiles/colarm.dir/data/salary_dataset.cc.o" "gcc" "src/CMakeFiles/colarm.dir/data/salary_dataset.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/colarm.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/colarm.dir/data/schema.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/colarm.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/colarm.dir/data/synthetic.cc.o.d"
  "/root/repo/src/ittree/ittree.cc" "src/CMakeFiles/colarm.dir/ittree/ittree.cc.o" "gcc" "src/CMakeFiles/colarm.dir/ittree/ittree.cc.o.d"
  "/root/repo/src/mining/apriori.cc" "src/CMakeFiles/colarm.dir/mining/apriori.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/apriori.cc.o.d"
  "/root/repo/src/mining/brute_force.cc" "src/CMakeFiles/colarm.dir/mining/brute_force.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/brute_force.cc.o.d"
  "/root/repo/src/mining/charm.cc" "src/CMakeFiles/colarm.dir/mining/charm.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/charm.cc.o.d"
  "/root/repo/src/mining/declat.cc" "src/CMakeFiles/colarm.dir/mining/declat.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/declat.cc.o.d"
  "/root/repo/src/mining/eclat.cc" "src/CMakeFiles/colarm.dir/mining/eclat.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/eclat.cc.o.d"
  "/root/repo/src/mining/fpgrowth.cc" "src/CMakeFiles/colarm.dir/mining/fpgrowth.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/fpgrowth.cc.o.d"
  "/root/repo/src/mining/itemset.cc" "src/CMakeFiles/colarm.dir/mining/itemset.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/itemset.cc.o.d"
  "/root/repo/src/mining/local_counter.cc" "src/CMakeFiles/colarm.dir/mining/local_counter.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/local_counter.cc.o.d"
  "/root/repo/src/mining/measures.cc" "src/CMakeFiles/colarm.dir/mining/measures.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/measures.cc.o.d"
  "/root/repo/src/mining/rule.cc" "src/CMakeFiles/colarm.dir/mining/rule.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/rule.cc.o.d"
  "/root/repo/src/mining/rule_generator.cc" "src/CMakeFiles/colarm.dir/mining/rule_generator.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/rule_generator.cc.o.d"
  "/root/repo/src/mining/tidset.cc" "src/CMakeFiles/colarm.dir/mining/tidset.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/tidset.cc.o.d"
  "/root/repo/src/mining/vertical.cc" "src/CMakeFiles/colarm.dir/mining/vertical.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mining/vertical.cc.o.d"
  "/root/repo/src/mip/index_stats.cc" "src/CMakeFiles/colarm.dir/mip/index_stats.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mip/index_stats.cc.o.d"
  "/root/repo/src/mip/mip_index.cc" "src/CMakeFiles/colarm.dir/mip/mip_index.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mip/mip_index.cc.o.d"
  "/root/repo/src/mip/serialize.cc" "src/CMakeFiles/colarm.dir/mip/serialize.cc.o" "gcc" "src/CMakeFiles/colarm.dir/mip/serialize.cc.o.d"
  "/root/repo/src/plans/focal_subset.cc" "src/CMakeFiles/colarm.dir/plans/focal_subset.cc.o" "gcc" "src/CMakeFiles/colarm.dir/plans/focal_subset.cc.o.d"
  "/root/repo/src/plans/operators.cc" "src/CMakeFiles/colarm.dir/plans/operators.cc.o" "gcc" "src/CMakeFiles/colarm.dir/plans/operators.cc.o.d"
  "/root/repo/src/plans/plans.cc" "src/CMakeFiles/colarm.dir/plans/plans.cc.o" "gcc" "src/CMakeFiles/colarm.dir/plans/plans.cc.o.d"
  "/root/repo/src/plans/query.cc" "src/CMakeFiles/colarm.dir/plans/query.cc.o" "gcc" "src/CMakeFiles/colarm.dir/plans/query.cc.o.d"
  "/root/repo/src/rtree/bulk_load.cc" "src/CMakeFiles/colarm.dir/rtree/bulk_load.cc.o" "gcc" "src/CMakeFiles/colarm.dir/rtree/bulk_load.cc.o.d"
  "/root/repo/src/rtree/rect.cc" "src/CMakeFiles/colarm.dir/rtree/rect.cc.o" "gcc" "src/CMakeFiles/colarm.dir/rtree/rect.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/colarm.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/colarm.dir/rtree/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
