# Empty compiler generated dependencies file for regional_trends.
# This may be replaced when dependencies are built.
