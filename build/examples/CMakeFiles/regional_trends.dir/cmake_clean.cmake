file(REMOVE_RECURSE
  "CMakeFiles/regional_trends.dir/regional_trends.cpp.o"
  "CMakeFiles/regional_trends.dir/regional_trends.cpp.o.d"
  "regional_trends"
  "regional_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
