# Empty compiler generated dependencies file for recommend_params.
# This may be replaced when dependencies are built.
