file(REMOVE_RECURSE
  "CMakeFiles/recommend_params.dir/recommend_params.cpp.o"
  "CMakeFiles/recommend_params.dir/recommend_params.cpp.o.d"
  "recommend_params"
  "recommend_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommend_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
