# Empty compiler generated dependencies file for salary_paradox.
# This may be replaced when dependencies are built.
