file(REMOVE_RECURSE
  "CMakeFiles/salary_paradox.dir/salary_paradox.cpp.o"
  "CMakeFiles/salary_paradox.dir/salary_paradox.cpp.o.d"
  "salary_paradox"
  "salary_paradox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salary_paradox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
