# Empty dependencies file for colarm_cli.
# This may be replaced when dependencies are built.
