file(REMOVE_RECURSE
  "CMakeFiles/colarm_cli.dir/colarm_cli.cc.o"
  "CMakeFiles/colarm_cli.dir/colarm_cli.cc.o.d"
  "colarm_cli"
  "colarm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colarm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
