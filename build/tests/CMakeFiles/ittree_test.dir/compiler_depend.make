# Empty compiler generated dependencies file for ittree_test.
# This may be replaced when dependencies are built.
