file(REMOVE_RECURSE
  "CMakeFiles/ittree_test.dir/ittree_test.cc.o"
  "CMakeFiles/ittree_test.dir/ittree_test.cc.o.d"
  "ittree_test"
  "ittree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ittree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
