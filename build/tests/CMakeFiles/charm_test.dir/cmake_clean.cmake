file(REMOVE_RECURSE
  "CMakeFiles/charm_test.dir/charm_test.cc.o"
  "CMakeFiles/charm_test.dir/charm_test.cc.o.d"
  "charm_test"
  "charm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
