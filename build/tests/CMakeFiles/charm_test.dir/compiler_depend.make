# Empty compiler generated dependencies file for charm_test.
# This may be replaced when dependencies are built.
