file(REMOVE_RECURSE
  "CMakeFiles/focal_subset_test.dir/focal_subset_test.cc.o"
  "CMakeFiles/focal_subset_test.dir/focal_subset_test.cc.o.d"
  "focal_subset_test"
  "focal_subset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focal_subset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
