# Empty dependencies file for focal_subset_test.
# This may be replaced when dependencies are built.
