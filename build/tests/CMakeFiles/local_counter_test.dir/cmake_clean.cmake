file(REMOVE_RECURSE
  "CMakeFiles/local_counter_test.dir/local_counter_test.cc.o"
  "CMakeFiles/local_counter_test.dir/local_counter_test.cc.o.d"
  "local_counter_test"
  "local_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
