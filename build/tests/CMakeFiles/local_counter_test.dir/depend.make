# Empty dependencies file for local_counter_test.
# This may be replaced when dependencies are built.
