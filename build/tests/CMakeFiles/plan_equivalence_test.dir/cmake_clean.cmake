file(REMOVE_RECURSE
  "CMakeFiles/plan_equivalence_test.dir/plan_equivalence_test.cc.o"
  "CMakeFiles/plan_equivalence_test.dir/plan_equivalence_test.cc.o.d"
  "plan_equivalence_test"
  "plan_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
