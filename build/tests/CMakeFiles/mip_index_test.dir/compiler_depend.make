# Empty compiler generated dependencies file for mip_index_test.
# This may be replaced when dependencies are built.
