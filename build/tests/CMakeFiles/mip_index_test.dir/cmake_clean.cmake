file(REMOVE_RECURSE
  "CMakeFiles/mip_index_test.dir/mip_index_test.cc.o"
  "CMakeFiles/mip_index_test.dir/mip_index_test.cc.o.d"
  "mip_index_test"
  "mip_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
