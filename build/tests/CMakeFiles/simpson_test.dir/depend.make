# Empty dependencies file for simpson_test.
# This may be replaced when dependencies are built.
