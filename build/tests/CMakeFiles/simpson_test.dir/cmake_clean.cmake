file(REMOVE_RECURSE
  "CMakeFiles/simpson_test.dir/simpson_test.cc.o"
  "CMakeFiles/simpson_test.dir/simpson_test.cc.o.d"
  "simpson_test"
  "simpson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
