# Empty dependencies file for tidset_test.
# This may be replaced when dependencies are built.
