# Empty dependencies file for csv_reader_test.
# This may be replaced when dependencies are built.
