file(REMOVE_RECURSE
  "CMakeFiles/csv_reader_test.dir/csv_reader_test.cc.o"
  "CMakeFiles/csv_reader_test.dir/csv_reader_test.cc.o.d"
  "csv_reader_test"
  "csv_reader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
