file(REMOVE_RECURSE
  "CMakeFiles/parameter_space_test.dir/parameter_space_test.cc.o"
  "CMakeFiles/parameter_space_test.dir/parameter_space_test.cc.o.d"
  "parameter_space_test"
  "parameter_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
