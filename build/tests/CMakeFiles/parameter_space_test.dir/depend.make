# Empty dependencies file for parameter_space_test.
# This may be replaced when dependencies are built.
