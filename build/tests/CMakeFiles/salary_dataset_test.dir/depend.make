# Empty dependencies file for salary_dataset_test.
# This may be replaced when dependencies are built.
