file(REMOVE_RECURSE
  "CMakeFiles/salary_dataset_test.dir/salary_dataset_test.cc.o"
  "CMakeFiles/salary_dataset_test.dir/salary_dataset_test.cc.o.d"
  "salary_dataset_test"
  "salary_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salary_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
