// colarm_cli — command-line front end for the COLARM engine.
//
// Build an index over a CSV relation (or the built-in salary example),
// then run localized mining queries, ask for EXPLAIN output, export rules,
// or let the recommender propose where to look.
//
// Usage:
//   colarm_cli [flags] [command]
//
// Commands:
//   query 'REPORT ...;'     run one textual query (repeatable via stdin
//                           when the argument is '-'); supports the
//                           constraint clauses CONTAIN / EXCLUDE /
//                           ANTECEDENT ATTRIBUTES and the HAVING measure
//                           floors minlift / mincosine / minkulczynski
//   suggest                 print the parameter recommender's proposals
//   stats                   print index statistics
//   explain 'REPORT ...;'   show per-plan cost estimates, do not execute
//   session                 interactive session: read one query per line
//                           from stdin and execute them against a shared
//                           session cache (focal-subset + count-memo reuse
//                           across queries); prints per-query cache
//                           telemetry and a final session summary
//
// Flags:
//   --csv FILE              input relation (default: built-in salary data)
//   --bins N                discretization bins for numeric CSV columns
//   --primary F             primary support for the offline build
//   --cache FILE            MIP-index cache path (load-or-build)
//   --plan NAME             force a plan (S-E-V, S-VS, SS-E-V, SS-VS,
//                           SS-E-U-V, ARM) instead of the optimizer
//   --export-csv FILE       write the last query's rules as CSV
//   --export-json FILE      write the last query's rules as JSON
//   --measures              include interestingness measures in exports
//   --limit N               print at most N rules (default 20)
//   --cache-mb N            session-cache byte budget in MiB for the
//                           `session` command (default 64; 0 disables)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/export.h"
#include "core/query_parser.h"
#include "core/recommender.h"
#include "data/csv_reader.h"
#include "data/salary_dataset.h"

namespace colarm {
namespace {

struct CliOptions {
  std::string csv_path;
  uint32_t bins = 5;
  double primary = 0.1;
  std::string cache_path;
  std::optional<PlanKind> forced_plan;
  std::string export_csv;
  std::string export_json;
  bool with_measures = false;
  size_t limit = 20;
  size_t cache_mb = 64;
  std::string command;
  std::string argument;
};

std::optional<PlanKind> PlanByName(const std::string& name) {
  for (PlanKind kind : kAllPlans) {
    if (EqualsIgnoreCase(name, PlanKindName(kind))) return kind;
  }
  return std::nullopt;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--csv FILE] [--bins N] [--primary F] "
               "[--cache FILE]\n"
               "          [--plan NAME] [--export-csv FILE] "
               "[--export-json FILE]\n"
               "          [--measures] [--limit N] [--cache-mb N]\n"
               "          (query STMT | suggest | stats | explain STMT |"
               " session)\n",
               argv0);
  return 2;
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  int i = 1;
  auto need_value = [&](const char* flag) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Status::InvalidArgument(std::string(flag) + " needs a value");
    }
    return std::string(argv[++i]);
  };
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--csv") {
      auto v = need_value("--csv");
      if (!v.ok()) return v.status();
      options.csv_path = *v;
    } else if (arg == "--bins") {
      auto v = need_value("--bins");
      if (!v.ok()) return v.status();
      uint64_t bins = 0;
      if (!ParseUint64(*v, &bins) || bins == 0) {
        return Status::InvalidArgument("--bins must be a positive integer");
      }
      options.bins = static_cast<uint32_t>(bins);
    } else if (arg == "--primary") {
      auto v = need_value("--primary");
      if (!v.ok()) return v.status();
      if (!ParseDouble(*v, &options.primary)) {
        return Status::InvalidArgument("--primary must be a number");
      }
    } else if (arg == "--cache") {
      auto v = need_value("--cache");
      if (!v.ok()) return v.status();
      options.cache_path = *v;
    } else if (arg == "--plan") {
      auto v = need_value("--plan");
      if (!v.ok()) return v.status();
      options.forced_plan = PlanByName(*v);
      if (!options.forced_plan.has_value()) {
        return Status::InvalidArgument("unknown plan '" + *v + "'");
      }
    } else if (arg == "--export-csv") {
      auto v = need_value("--export-csv");
      if (!v.ok()) return v.status();
      options.export_csv = *v;
    } else if (arg == "--export-json") {
      auto v = need_value("--export-json");
      if (!v.ok()) return v.status();
      options.export_json = *v;
    } else if (arg == "--measures") {
      options.with_measures = true;
    } else if (arg == "--limit") {
      auto v = need_value("--limit");
      if (!v.ok()) return v.status();
      uint64_t limit = 0;
      if (!ParseUint64(*v, &limit)) {
        return Status::InvalidArgument("--limit must be an integer");
      }
      options.limit = limit;
    } else if (arg == "--cache-mb") {
      auto v = need_value("--cache-mb");
      if (!v.ok()) return v.status();
      uint64_t mb = 0;
      if (!ParseUint64(*v, &mb)) {
        return Status::InvalidArgument("--cache-mb must be an integer");
      }
      options.cache_mb = mb;
    } else if (options.command.empty()) {
      options.command = arg;
    } else if (options.argument.empty()) {
      options.argument = arg;
    } else {
      return Status::InvalidArgument("unexpected argument '" + arg + "'");
    }
  }
  if (options.command.empty()) {
    return Status::InvalidArgument("missing command");
  }
  return options;
}

int RunQuery(const Engine& engine, const Dataset& dataset,
             const CliOptions& options, const std::string& statement,
             bool explain_only) {
  const Schema& schema = dataset.schema();
  auto query = ParseQuery(schema, statement);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  if (explain_only) {
    auto decision = engine.Explain(*query);
    if (!decision.ok()) {
      std::fprintf(stderr, "%s\n", decision.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", FormatDecision(*decision).c_str());
    return 0;
  }

  Result<QueryResult> result =
      options.forced_plan.has_value()
          ? engine.ExecuteWithPlan(*query, *options.forced_plan)
          : engine.Execute(*query);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu rule(s), plan %s, %.3f ms (|DQ|=%u)\n",
              result->rules.rules.size(), PlanKindName(result->plan_used),
              result->stats.total_ms, result->stats.subset_size);
  if (!result->decision.constraints.empty()) {
    std::string clauses = result->decision.constraints;
    if (clauses.rfind(" AND ", 0) == 0) clauses.erase(0, 5);
    std::printf("constraints: %s\n", clauses.c_str());
  }
  std::printf("%s", FormatRules(schema, result->rules, options.limit).c_str());

  if (!options.export_csv.empty() || !options.export_json.empty()) {
    FocalSubset subset =
        FocalSubset::Materialize(dataset, query->ToRect(schema));
    ExportOptions export_options;
    export_options.with_measures = options.with_measures;
    if (!options.export_csv.empty()) {
      std::ofstream out(options.export_csv);
      RulesToCsv(dataset, result->rules, subset, export_options, out);
      std::printf("wrote %s\n", options.export_csv.c_str());
    }
    if (!options.export_json.empty()) {
      std::ofstream out(options.export_json);
      RulesToJson(dataset, result->rules, subset, export_options, out);
      std::printf("wrote %s\n", options.export_json.c_str());
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return Usage(argv[0]);
  }
  const CliOptions& options = *parsed;

  Dataset dataset = MakeSalaryDataset();
  if (!options.csv_path.empty()) {
    CsvOptions csv_options;
    csv_options.numeric_bins = options.bins;
    auto loaded = ReadCsvFile(options.csv_path, csv_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", options.csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded.value());
  } else {
    std::fprintf(stderr, "note: no --csv given, using built-in salary data\n");
  }

  EngineOptions engine_options;
  engine_options.index.primary_support =
      options.csv_path.empty() ? 0.27 : options.primary;
  engine_options.index_cache_path = options.cache_path;
  if (options.command == "session") {
    engine_options.cache.enabled = options.cache_mb > 0;
    engine_options.cache.byte_budget = options.cache_mb << 20;
  }
  auto engine = Engine::Build(dataset, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  if (options.command == "stats") {
    std::printf("%s", (*engine)->index().stats().ToString().c_str());
    return 0;
  }
  if (options.command == "suggest") {
    ParameterRecommender recommender((*engine)->index());
    auto suggestions = recommender.Suggest();
    if (suggestions.empty()) {
      std::printf("no localized structure found\n");
      return 0;
    }
    for (size_t i = 0; i < suggestions.size(); ++i) {
      std::printf("%zu. %s\n", i + 1,
                  suggestions[i].ToString(dataset.schema()).c_str());
    }
    return 0;
  }
  if (options.command == "query" || options.command == "explain") {
    std::string statement = options.argument;
    if (statement.empty() || statement == "-") {
      std::string line;
      while (std::getline(std::cin, line)) {
        statement += line;
        statement += '\n';
      }
    }
    if (statement.empty()) {
      std::fprintf(stderr, "no query given\n");
      return 1;
    }
    return RunQuery(**engine, dataset, options, statement,
                    options.command == "explain");
  }
  if (options.command == "session") {
    // REPL over a cache-enabled engine: one statement per line, shared
    // focal-subset and count-memo reuse across the whole session.
    std::fprintf(stderr,
                 "session mode (cache budget %zu MiB); one query per line, "
                 "EOF ends the session\n",
                 options.cache_mb);
    std::string line;
    size_t executed = 0;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      auto query = ParseQuery(dataset.schema(), line);
      if (!query.ok()) {
        std::fprintf(stderr, "parse error: %s\n",
                     query.status().ToString().c_str());
        continue;
      }
      auto result = (*engine)->Execute(*query);
      if (!result.ok()) {
        std::fprintf(stderr, "execution error: %s\n",
                     result.status().ToString().c_str());
        continue;
      }
      ++executed;
      if (result->decision.cache.tier != CacheTier::kNone) {
        std::printf("[cache: %s hit, %.0f cached records]\n",
                    CacheTierName(result->decision.cache.tier),
                    result->decision.cache.cached_size);
      }
      std::printf("%s",
                  FormatQueryResult(dataset.schema(), *result).c_str());
    }
    if ((*engine)->cache() != nullptr) {
      CacheTelemetry t = (*engine)->cache()->telemetry();
      std::printf(
          "session summary: %zu quer(ies); cache exact=%llu "
          "containment=%llu memo=%llu misses=%llu evictions=%llu "
          "resident=%llu bytes / %llu entries\n",
          executed, static_cast<unsigned long long>(t.hits_exact),
          static_cast<unsigned long long>(t.hits_containment),
          static_cast<unsigned long long>(t.hits_count_memo),
          static_cast<unsigned long long>(t.misses),
          static_cast<unsigned long long>(t.evictions),
          static_cast<unsigned long long>(t.bytes),
          static_cast<unsigned long long>(t.entries));
    }
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", options.command.c_str());
  return Usage(argv[0]);
}

}  // namespace
}  // namespace colarm

int main(int argc, char** argv) { return colarm::Main(argc, argv); }
