// colarm_fuzz — differential fuzzer for the plan-equivalence contract.
//
// Each seed expands into a deterministic random case (schema, dataset,
// primary support, query batch) that is checked against every metamorphic
// invariant: all six plans vs. the brute-force oracle, thread-count
// invariance (1/2/8), serialize round-trips, threshold monotonicity,
// focal-box containment dominance, backend and session-cache equivalence,
// SIMD kernel-level equivalence, and differential constraint equivalence
// (constrained execution == post-filtered unconstrained execution). The
// first failing case is shrunk to a minimal dataset+query reproducer and
// printed as a ready-to-paste test.
//
// Usage:
//   colarm_fuzz [flags]
//
// Flags:
//   --seeds N          number of cases to run (default 50)
//   --seed-base S      first seed (default 1); case i uses seed S+i
//   --smoke            CI preset: small cases, fixed seed base, finishes
//                      well under a minute; exit code 1 on any violation
//   --minutes M        long-running mode: keep drawing seeds until M
//                      minutes elapsed (overrides --seeds)
//   --threads A,B,...  pool sizes for the thread-invariance sweep
//                      (default 2,8; "1" alone disables the sweep)
//   --no-serialize     skip the serialize round-trip invariant
//   --no-session-cache skip the session-cache replay invariant
//   --no-cache-persistence  skip the cache save->load->replay invariant
//   --no-simd          skip the SIMD kernel-level equivalence invariant
//   --no-constraints   generate only unconstrained queries and skip the
//                      constraint-equivalence invariant
//   --no-shrink        report the raw failing case without minimizing it
//   --inject-off-by-one  bias the oracle's local minsupport threshold by
//                      +1 to demonstrate that a >= vs > bug is caught
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "testing/generator.h"
#include "testing/invariants.h"
#include "testing/shrinker.h"

namespace colarm {
namespace {

struct FuzzFlags {
  uint64_t seeds = 50;
  uint64_t seed_base = 1;
  double minutes = 0.0;
  bool smoke = false;
  bool shrink = true;
  bool inject_off_by_one = false;
  bool constraints = true;
  fuzzing::CheckOptions check;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--seed-base S] [--smoke] "
               "[--minutes M]\n"
               "          [--threads A,B,...] [--no-serialize] "
               "[--no-session-cache] [--no-cache-persistence] [--no-simd] "
               "[--no-constraints] [--no-shrink] [--inject-off-by-one]\n",
               argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, FuzzFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = need_value();
      if (v == nullptr || !ParseUint64(v, &flags->seeds)) return false;
    } else if (arg == "--seed-base") {
      const char* v = need_value();
      if (v == nullptr || !ParseUint64(v, &flags->seed_base)) return false;
    } else if (arg == "--minutes") {
      const char* v = need_value();
      if (v == nullptr || !ParseDouble(v, &flags->minutes)) return false;
    } else if (arg == "--threads") {
      const char* v = need_value();
      if (v == nullptr) return false;
      flags->check.thread_counts.clear();
      for (const std::string& part : SplitString(v, ',')) {
        uint64_t n = 0;
        if (!ParseUint64(part, &n) || n == 0 || n > 64) return false;
        if (n > 1) flags->check.thread_counts.push_back(
            static_cast<unsigned>(n));
      }
      flags->check.check_threads = !flags->check.thread_counts.empty();
    } else if (arg == "--smoke") {
      flags->smoke = true;
    } else if (arg == "--no-serialize") {
      flags->check.check_serialize = false;
    } else if (arg == "--no-session-cache") {
      flags->check.check_session_cache = false;
    } else if (arg == "--no-cache-persistence") {
      flags->check.check_cache_persistence = false;
    } else if (arg == "--no-simd") {
      flags->check.check_simd = false;
    } else if (arg == "--no-constraints") {
      flags->constraints = false;
      flags->check.check_constraints = false;
    } else if (arg == "--no-shrink") {
      flags->shrink = false;
    } else if (arg == "--inject-off-by-one") {
      flags->inject_off_by_one = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  FuzzFlags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage(argv[0]);
  if (flags.inject_off_by_one) flags.check.oracle.inject_min_count_bias = 1;

  fuzzing::FuzzLimits limits;
  limits.constraints = flags.constraints;
  if (flags.smoke) {
    // CI envelope: tiny cases, whole run < 60 s including the oracle.
    limits.max_records = 80;
    limits.max_attrs = 5;
    limits.max_domain = 4;
    limits.queries_per_case = 3;
  } else {
    limits.max_records = 400;
    limits.max_attrs = 7;
  }

  const auto start = std::chrono::steady_clock::now();
  auto minutes_elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() /
           60.0;
  };

  uint64_t ran = 0;
  for (uint64_t i = 0;; ++i) {
    if (flags.minutes > 0.0) {
      if (minutes_elapsed() >= flags.minutes) break;
    } else if (i >= flags.seeds) {
      break;
    }
    const uint64_t seed = flags.seed_base + i;
    fuzzing::FuzzCase fuzz_case = fuzzing::GenerateFuzzCase(seed, limits);
    std::vector<fuzzing::Violation> violations =
        fuzzing::CheckCase(fuzz_case, flags.check);
    ++ran;
    if (!violations.empty()) {
      std::printf("seed %llu: %zu violation(s)\n",
                  static_cast<unsigned long long>(seed), violations.size());
      for (const auto& violation : violations) {
        std::printf("  %s\n", violation.ToString().c_str());
      }
      if (flags.shrink) {
        fuzzing::FuzzCase shrunk =
            fuzzing::ShrinkCase(fuzz_case, flags.check);
        std::printf(
            "shrunk to %u record(s), %u attribute(s), %zu quer%s:\n\n%s\n",
            shrunk.dataset.num_records(), shrunk.dataset.num_attributes(),
            shrunk.queries.size(), shrunk.queries.size() == 1 ? "y" : "ies",
            fuzzing::FormatReproducer(shrunk).c_str());
      }
      std::printf("FAIL after %llu case(s)\n",
                  static_cast<unsigned long long>(ran));
      return 1;
    }
    if (ran % 50 == 0) {
      std::printf("%llu cases ok (%.1f s)\n",
                  static_cast<unsigned long long>(ran),
                  minutes_elapsed() * 60.0);
      std::fflush(stdout);
    }
  }
  std::printf("OK: %llu case(s), zero invariant violations (%.1f s)\n",
              static_cast<unsigned long long>(ran), minutes_elapsed() * 60.0);
  return 0;
}

}  // namespace
}  // namespace colarm

int main(int argc, char** argv) { return colarm::Main(argc, argv); }
