// colarm_server — multi-tenant TCP front end for the COLARM engine.
//
// One engine (and its MIP-index) is shared by every tenant; each tenant
// gets a private session cache, so an analyst's drill-down sequence hits
// its own containment tiers. The protocol is line-oriented text — try it
// with nc:
//
//   $ colarm_server --port 7437 &
//   $ printf 'HELLO alice\nMINE REPORT LOCALIZED ASSOCIATION RULES WHERE
//     RANGE Location = {Seattle} HAVING minsupport = 0.6 AND
//     minconfidence = 0.75;\nQUIT\n' | nc 127.0.0.1 7437
//
// Flags:
//   --port N            TCP port (default 0 = ephemeral; the bound port is
//                       printed as "LISTENING <port>" on stdout)
//   --host ADDR         bind address (default 127.0.0.1)
//   --csv FILE          input relation (default: built-in salary data)
//   --bins N            discretization bins for numeric CSV columns
//   --primary F         primary support for the offline build
//   --threads N         engine worker threads (0 = hardware)
//   --io-threads N      event-loop threads (0 = min(hardware, 4))
//   --cache-mb N        per-tenant session-cache budget in MiB
//                       (default 16; 0 disables tenant caches)
//   --cache-dir PATH    warm-start directory: tenant caches load from
//                       PATH/<tenant>.ccache at HELLO and persist back
//                       at drain (missing/corrupt files start cold)
//   --max-inflight N    global admitted-request bound (default 64)
//   --tenant-inflight N per-tenant admitted-request bound (default 16)
//   --deadline-ms F     per-request deadline (default 0 = none)
//   --no-calibrate      use portable cost constants (deterministic plan
//                       choice; what server_smoke relies on)
//
// SIGINT/SIGTERM drain gracefully: listeners close, admitted queries
// finish (bounded), responses flush, then the process exits 0.
#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "data/csv_reader.h"
#include "data/salary_dataset.h"
#include "server/server.h"

namespace colarm {
namespace {

struct ToolOptions {
  ServerOptions server;
  std::string csv_path;
  uint32_t bins = 5;
  double primary = 0.1;
  unsigned threads = 0;
  size_t cache_mb = 16;
  bool calibrate = true;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host ADDR] [--csv FILE] [--bins N]\n"
               "          [--primary F] [--threads N] [--io-threads N]\n"
               "          [--cache-mb N] [--cache-dir PATH] [--max-inflight N]\n"
               "          [--tenant-inflight N] [--deadline-ms F]\n"
               "          [--no-calibrate]\n",
               argv0);
  return 2;
}

Result<ToolOptions> ParseArgs(int argc, char** argv) {
  ToolOptions options;
  int i = 1;
  auto need_value = [&](const char* flag) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Status::InvalidArgument(std::string(flag) + " needs a value");
    }
    return std::string(argv[++i]);
  };
  auto need_uint = [&](const char* flag) -> Result<uint64_t> {
    auto v = need_value(flag);
    if (!v.ok()) return v.status();
    uint64_t parsed = 0;
    if (!ParseUint64(*v, &parsed)) {
      return Status::InvalidArgument(std::string(flag) +
                                     " must be a non-negative integer");
    }
    return parsed;
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      auto v = need_uint("--port");
      if (!v.ok()) return v.status();
      if (*v > 65535) return Status::InvalidArgument("--port out of range");
      options.server.port = static_cast<uint16_t>(*v);
    } else if (arg == "--host") {
      auto v = need_value("--host");
      if (!v.ok()) return v.status();
      options.server.host = *v;
    } else if (arg == "--csv") {
      auto v = need_value("--csv");
      if (!v.ok()) return v.status();
      options.csv_path = *v;
    } else if (arg == "--bins") {
      auto v = need_uint("--bins");
      if (!v.ok()) return v.status();
      if (*v == 0) return Status::InvalidArgument("--bins must be positive");
      options.bins = static_cast<uint32_t>(*v);
    } else if (arg == "--primary") {
      auto v = need_value("--primary");
      if (!v.ok()) return v.status();
      if (!ParseDouble(*v, &options.primary)) {
        return Status::InvalidArgument("--primary must be a number");
      }
    } else if (arg == "--threads") {
      auto v = need_uint("--threads");
      if (!v.ok()) return v.status();
      options.threads = static_cast<unsigned>(*v);
    } else if (arg == "--io-threads") {
      auto v = need_uint("--io-threads");
      if (!v.ok()) return v.status();
      options.server.io_threads = static_cast<unsigned>(*v);
    } else if (arg == "--cache-mb") {
      auto v = need_uint("--cache-mb");
      if (!v.ok()) return v.status();
      options.cache_mb = *v;
    } else if (arg == "--cache-dir") {
      auto v = need_value("--cache-dir");
      if (!v.ok()) return v.status();
      options.server.service.cache_dir = *v;
    } else if (arg == "--max-inflight") {
      auto v = need_uint("--max-inflight");
      if (!v.ok()) return v.status();
      if (*v == 0) {
        return Status::InvalidArgument("--max-inflight must be positive");
      }
      options.server.service.max_inflight = static_cast<uint32_t>(*v);
    } else if (arg == "--tenant-inflight") {
      auto v = need_uint("--tenant-inflight");
      if (!v.ok()) return v.status();
      if (*v == 0) {
        return Status::InvalidArgument("--tenant-inflight must be positive");
      }
      options.server.service.max_tenant_inflight = static_cast<uint32_t>(*v);
    } else if (arg == "--deadline-ms") {
      auto v = need_value("--deadline-ms");
      if (!v.ok()) return v.status();
      if (!ParseDouble(*v, &options.server.service.deadline_ms) ||
          options.server.service.deadline_ms < 0) {
        return Status::InvalidArgument(
            "--deadline-ms must be a non-negative number");
      }
    } else if (arg == "--no-calibrate") {
      options.calibrate = false;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  options.server.service.tenant_cache.enabled = options.cache_mb > 0;
  options.server.service.tenant_cache.byte_budget = options.cache_mb << 20;
  return options;
}

int ServerMain(int argc, char** argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return Usage(argv[0]);
  }
  const ToolOptions& options = *parsed;

  Dataset dataset = MakeSalaryDataset();
  if (!options.csv_path.empty()) {
    CsvOptions csv_options;
    csv_options.numeric_bins = options.bins;
    auto loaded = ReadCsvFile(options.csv_path, csv_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", options.csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded.value());
  } else {
    std::fprintf(stderr, "note: no --csv given, using built-in salary data\n");
  }

  EngineOptions engine_options;
  engine_options.index.primary_support =
      options.csv_path.empty() ? 0.27 : options.primary;
  engine_options.calibrate = options.calibrate;
  engine_options.num_threads = options.threads;
  auto engine = Engine::Build(dataset, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Writes race client disconnects by design; MSG_NOSIGNAL covers sends,
  // this covers anything else.
  ::signal(SIGPIPE, SIG_IGN);

  // Block the shutdown signals in every thread the server spawns, then
  // sigwait them here: the drain runs on the main thread, not in a signal
  // handler.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  Server server(**engine, options.server);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&signals, &sig);
  std::fprintf(stderr, "signal %d: draining\n", sig);
  server.Shutdown();
  // After the event loops stop, the tenant caches are quiescent — persist
  // them so the next process starts warm.
  if (!options.server.service.cache_dir.empty()) {
    const size_t saved = server.service().PersistCaches();
    std::fprintf(stderr, "persisted %zu tenant cache(s) to %s\n", saved,
                 options.server.service.cache_dir.c_str());
  }
  std::fprintf(stderr, "drained, bye\n");
  return 0;
}

}  // namespace
}  // namespace colarm

int main(int argc, char** argv) { return colarm::ServerMain(argc, argv); }
